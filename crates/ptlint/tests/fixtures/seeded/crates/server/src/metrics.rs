//! Seeded violation: `OP_LABELS` is missing the "query" label, so its
//! latency histogram would silently be dropped.
pub const OP_LABELS: [&str; 1] = ["ping"];
