//! Dispatch for the seeded fixture: every Request variant is handled.
use crate::proto::{Request, Response};

pub fn dispatch(req: &Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Query => Response::Pong,
    }
}
