//! Seeded violation: a renamed `std::fs` import outside the Vfs seam.
use std::fs as sneaky_fs;

pub fn slurp(path: &str) -> Vec<u8> {
    sneaky_fs::read(path).unwrap_or_default()
}
