//! Minimal protocol surface for the seeded fixture: two request
//! opcodes, one response opcode, the hand-synchronized surfaces present
//! and in step — except for two deliberate defects: the `query` label
//! is missing from OP_LABELS in `metrics.rs`, and `Request::Query` has
//! no entry in the admission cost table below.

mod op {
    pub const PING: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const R_PONG: u8 = 0x81;
}

pub enum Request {
    Ping,
    Query,
}

pub enum Response {
    Pong,
}

impl Request {
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => op::PING,
            Request::Query => op::QUERY,
        }
    }
    pub fn label(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Query => "query",
        }
    }
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => vec![op::PING],
            Request::Query => vec![op::QUERY],
        }
    }
    pub fn decode(buf: &[u8]) -> Option<Request> {
        match buf.first().copied() {
            Some(op::PING) => Some(Request::Ping),
            Some(op::QUERY) => Some(Request::Query),
            _ => None,
        }
    }
    pub fn cost(&self) -> u32 {
        match self {
            Request::Ping => 1,
            // Query deliberately has no cost entry: ptlint must flag it,
            // because a variant missing here would dodge load shedding.
            _ => 1,
        }
    }
}

impl Response {
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Pong => op::R_PONG,
        }
    }
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => vec![op::R_PONG],
        }
    }
    pub fn decode(buf: &[u8]) -> Option<Response> {
        match buf.first().copied() {
            Some(op::R_PONG) => Some(Response::Pong),
            _ => None,
        }
    }
}
