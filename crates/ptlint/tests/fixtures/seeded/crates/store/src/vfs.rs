//! The I/O seam of the fixture workspace. Direct `std::fs` use is
//! legal only in this file; ptlint must report nothing here.
use std::fs;

pub fn read(path: &str) -> std::io::Result<Vec<u8>> {
    fs::read(path)
}
