//! Seeded violations: a hot-path unwrap and a lock-order cycle.
use parking_lot::Mutex;

pub struct Pool {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pool {
    pub fn forward(&self) -> u32 {
        let _a = self.a.lock();
        let _b = self.b.lock();
        0
    }

    pub fn backward(&self) -> u32 {
        let _b = self.b.lock();
        let _a = self.a.lock();
        0
    }

    pub fn hot(&self, v: Option<u32>) -> u32 {
        v.unwrap()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
