//! Golden-output tests over the seeded-violation fixture.
//!
//! The fixture under `tests/fixtures/seeded/` plants at least one
//! violation per check family (a renamed `std::fs` import, a hot-path
//! unwrap, a reversed lock acquisition that is both a new edge and a
//! cycle, an opcode missing its `OP_LABELS` entry, and a request
//! variant missing from the admission cost table). The rendered table
//! and JSON are compared byte-for-byte against committed golden files
//! so any drift in sorting, alignment, or escaping is caught — the
//! same contract `pt fsck` output is held to.
//!
//! To regenerate after an intentional rendering change:
//!
//! ```text
//! cargo run -p ptlint -- --root crates/ptlint/tests/fixtures/seeded \
//!     --out crates/ptlint/tests/fixtures/seeded-expected.table
//! cargo run -p ptlint -- --root crates/ptlint/tests/fixtures/seeded \
//!     --json --out crates/ptlint/tests/fixtures/seeded-expected.json
//! ```

use std::path::{Path, PathBuf};

use ptlint::findings::{LintReport, Severity};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded")
}

fn fixture_report() -> LintReport {
    ptlint::run_at(&fixture_root())
}

#[test]
fn table_output_matches_golden_byte_for_byte() {
    let expected = include_str!("fixtures/seeded-expected.table");
    assert_eq!(fixture_report().render_table(), expected);
}

#[test]
fn json_output_matches_golden_byte_for_byte() {
    let expected = include_str!("fixtures/seeded-expected.json");
    assert_eq!(fixture_report().to_json(), expected);
}

#[test]
fn fixture_plants_exactly_one_violation_per_check_family() {
    let report = fixture_report();
    assert_eq!(report.errors(), 6, "{}", report.render_table());
    assert_eq!(report.warnings(), 0, "{}", report.render_table());
    let mut families: Vec<&str> = report
        .findings
        .iter()
        .map(|f| ptlint::family(f.code))
        .collect();
    families.sort_unstable();
    // locks appears twice: the reversed order is reported both as an
    // unlisted edge and as the cycle it closes. protocol appears twice:
    // the missing OP_LABELS entry and the missing cost-table arm.
    assert_eq!(
        families,
        ["io", "locks", "locks", "panics", "protocol", "protocol"]
    );
}

/// Check family: I/O confinement. The fixture renames the import
/// (`use std::fs as sneaky_fs`) to prove renames do not launder
/// direct I/O past the Vfs seam.
#[test]
fn io_check_catches_renamed_std_fs_import() {
    let report = fixture_report();
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "io.direct-fs")
        .expect("io.direct-fs finding");
    assert_eq!(f.file, "crates/server/src/wire.rs");
    assert_eq!(f.line, 2);
    assert!(
        f.detail.contains("sneaky_fs"),
        "detail should name the rename: {}",
        f.detail
    );
    // The exempt file (the Vfs implementation itself) uses std::fs
    // heavily and must not be flagged.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file == "crates/store/src/vfs.rs"),
        "vfs.rs is the confinement seam and is exempt"
    );
}

/// Check family: panic-freedom. The hot-path `.unwrap()` is flagged;
/// the identical call inside `#[cfg(test)]` is not.
#[test]
fn panic_check_flags_hot_path_unwrap_but_not_test_code() {
    let report = fixture_report();
    let panics: Vec<_> = report
        .findings
        .iter()
        .filter(|f| ptlint::family(f.code) == "panics")
        .collect();
    assert_eq!(panics.len(), 1, "{}", report.render_table());
    assert_eq!(panics[0].code, "panics.unwrap");
    assert_eq!(panics[0].file, "crates/store/src/buffer.rs");
    assert_eq!(panics[0].line, 23);
}

/// Check family: lock order. `backward()` acquires `pool.a` under
/// `pool.b`, which is both an edge missing from the allowlist and a
/// cycle against the committed `pool.a -> pool.b` order.
#[test]
fn lock_check_reports_new_edge_and_closed_cycle() {
    let report = fixture_report();
    let new_edge = report
        .findings
        .iter()
        .find(|f| f.code == "locks.new-edge")
        .expect("locks.new-edge finding");
    assert_eq!(new_edge.file, "crates/store/src/buffer.rs");
    assert_eq!(new_edge.line, 18);
    assert!(new_edge.detail.contains("tools/lock-order.toml"));

    let cycle = report
        .findings
        .iter()
        .find(|f| f.code == "locks.cycle")
        .expect("locks.cycle finding");
    assert!(
        cycle.detail.contains("pool.a -> pool.b -> pool.a"),
        "cycle should render closed: {}",
        cycle.detail
    );
}

/// Check family: protocol/metric consistency. The "query" request is
/// decodable and dispatched but missing from `OP_LABELS`, so its
/// latency histogram would silently be dropped.
#[test]
fn protocol_check_flags_missing_op_label() {
    let report = fixture_report();
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "protocol.missing-op-label")
        .expect("protocol.missing-op-label finding");
    assert_eq!(f.file, "crates/server/src/metrics.rs");
    assert_eq!(f.line, 3);
    assert!(f.detail.contains("query"), "detail: {}", f.detail);
}

/// Check family: protocol/metric consistency, admission cost table.
/// `Request::Query` has no arm in `Request::cost`, so it would bypass
/// opcode-cost load shedding.
#[test]
fn protocol_check_flags_missing_cost_table_entry() {
    let report = fixture_report();
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "protocol.missing-arm")
        .expect("protocol.missing-arm finding");
    assert_eq!(f.file, "crates/server/src/proto.rs");
    assert!(
        f.detail.contains("Query") && f.detail.contains("cost"),
        "detail: {}",
        f.detail
    );
}

/// Every finding in the golden report is an error: the seeded fixture
/// must keep exercising the deny path (`--deny all` exits non-zero).
#[test]
fn seeded_findings_are_all_errors() {
    let report = fixture_report();
    assert!(report
        .findings
        .iter()
        .all(|f| f.severity == Severity::Error));
}

/// The real workspace two levels up must lint clean — the same gate
/// CI enforces with `cargo run -p ptlint -- --deny all`.
#[test]
fn real_workspace_has_no_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = ptlint::run_at(&root);
    assert_eq!(report.errors(), 0, "{}", report.render_table());
}
