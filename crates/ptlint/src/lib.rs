//! `ptlint` — workspace-aware static analysis for the PerfTrack repo.
//!
//! The engine's correctness story rests on a few cross-cutting
//! invariants that no single crate's type system can see: all engine
//! I/O flows through the `Vfs` seam, the request path never panics on
//! untrusted bytes, locks are acquired in one global order, and the
//! wire protocol's four hand-synchronized surfaces (opcode constants,
//! enum arms, dispatch match, `OP_LABELS`) stay in step. `ptlint`
//! checks all four as a CI gate, reporting typed [`Finding`]s with the
//! same table/JSON contract as `pt fsck`.
//!
//! The analysis is token-level, not AST-level: the crate is
//! deliberately dependency-free (this container builds with no network
//! access, and a lint gate should never be knocked over by the
//! dependencies of the code it checks), so it lexes Rust by hand —
//! enough to strip comments/strings, mark `#[cfg(test)]` regions,
//! match brace structure, and track `use` renames, which is what
//! separates it from the grep it replaces. See `docs/ANALYSIS.md` for
//! the check catalogue and escape-hatch policy.

#![deny(missing_docs)]

pub mod checks;
pub mod config;
pub mod findings;
pub mod lexer;

pub use config::LockOrderConfig;
pub use findings::{Finding, LintReport, Severity};

use checks::Workspace;
use std::path::Path;

/// Which checks to run and where.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root directory.
    pub root: std::path::PathBuf,
    /// Workspace-relative path of the lock-order allowlist.
    pub lock_order: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            root: std::path::PathBuf::from("."),
            lock_order: "tools/lock-order.toml".to_string(),
        }
    }
}

/// Run every check family over the workspace and return the report.
pub fn run_all(opts: &Options) -> LintReport {
    let ws = Workspace::new(&opts.root);
    let mut report = LintReport::new();
    checks::io::run(&ws, &mut report);
    checks::panics::run(&ws, &mut report);
    match load_lock_config(&ws, &opts.lock_order) {
        Ok(cfg) => checks::locks::run(&ws, &cfg, &mut report),
        Err(f) => report.push(f),
    }
    checks::protocol::run(&ws, &mut report);
    report.files_scanned = ws.files_lexed();
    report
}

/// The observed lock-acquisition edges (powers `--list-edges`).
pub fn list_edges(opts: &Options) -> Result<Vec<checks::locks::ObservedEdge>, String> {
    let ws = Workspace::new(&opts.root);
    match load_lock_config(&ws, &opts.lock_order) {
        Ok(cfg) => Ok(checks::locks::observed_edges(&ws, &cfg)),
        Err(f) => Err(f.detail),
    }
}

fn load_lock_config(ws: &Workspace, rel: &str) -> Result<LockOrderConfig, Finding> {
    let Some(text) = ws.read(rel) else {
        return Err(Finding {
            code: "locks.missing-config",
            severity: Severity::Error,
            file: rel.to_string(),
            line: 0,
            detail: "lock-order allowlist is missing; commit tools/lock-order.toml".to_string(),
        });
    };
    LockOrderConfig::parse(&text).map_err(|e| Finding {
        code: "locks.bad-config",
        severity: Severity::Error,
        file: rel.to_string(),
        line: 0,
        detail: e,
    })
}

/// The deny family a finding code belongs to: its prefix, with
/// `metrics.*` folded into `protocol` (one ISSUE-level check family)
/// and `directive.*` standing alone.
pub fn family(code: &str) -> &str {
    let prefix = code.split('.').next().unwrap_or(code);
    if prefix == "metrics" {
        "protocol"
    } else {
        prefix
    }
}

/// Convenience for tests: run everything against a given root with the
/// default lock-order path.
pub fn run_at(root: &Path) -> LintReport {
    run_all(&Options {
        root: root.to_path_buf(),
        ..Options::default()
    })
}
