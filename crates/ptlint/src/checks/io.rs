//! Check 1: I/O confinement.
//!
//! Engine code must reach the filesystem only through the
//! [`Vfs`](../../store/src/vfs.rs) seam — that is what lets the fault
//! matrix inject torn writes and transient errors under every I/O the
//! engine performs. This check walks every source file of the *engine
//! crates* (`crates/store`, `crates/server`) and flags any direct use
//! of `std::fs`, whether imported, renamed, or fully qualified:
//!
//! * `use std::fs;` / `use std::fs::File;` / `use std::fs::{...}` —
//!   the `use` item itself is flagged, which also covers every later
//!   use of the imported name;
//! * `use std::fs as xfs;` — the rename the old grep-based CI check
//!   famously missed;
//! * `std::fs::read(..)` and `::std::fs::...` — fully qualified paths
//!   in expression position.
//!
//! Host-side crates (`cli`, `bench`, `adapters`, ...) are deliberately
//! out of scope: reading PTDF inputs and writing reports from the host
//! filesystem is their job. `#[cfg(test)]` code is exempt (tests build
//! scratch directories), `crates/store/src/vfs.rs` is the one file
//! allowed to touch `std::fs`, and residual sites carry a
//! `// ptlint: allow(io) -- reason` directive.

use super::{Allows, Workspace};
use crate::findings::{Finding, LintReport, Severity};
use crate::lexer::TokenKind;

/// Directories whose sources are confined.
const CONFINED_DIRS: &[&str] = &["crates/store/src", "crates/server/src"];

/// The one file allowed to use `std::fs` directly.
const VFS: &str = "crates/store/src/vfs.rs";

/// Run the confinement check over `ws`, appending findings to `report`.
pub fn run(ws: &Workspace, report: &mut LintReport) {
    for dir in CONFINED_DIRS {
        for file in ws.rust_sources(dir) {
            if file == VFS {
                continue;
            }
            check_file(ws, &file, report);
        }
    }
}

fn check_file(ws: &Workspace, file: &str, report: &mut LintReport) {
    let Some(lexed) = ws.lex(file) else { return };
    let allows = Allows::parse(&lexed);
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // `std :: fs` — the stem of every import and qualified path.
        let hit = toks[i].kind == TokenKind::Ident
            && toks[i].text == "std"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("fs"));
        if hit && !lexed.in_test[i] {
            let line = toks[i].line;
            if !allows.permits("io", line) {
                let is_use = preceding_use(toks, i);
                let detail = if is_use {
                    describe_use(toks, i)
                } else {
                    "fully qualified `std::fs` path; route this through the Vfs seam".to_string()
                };
                report.push(Finding {
                    code: "io.direct-fs",
                    severity: Severity::Error,
                    file: file.to_string(),
                    line,
                    detail,
                });
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    allows.report_unjustified(file, report);
}

/// Is token `i` part of a `use` item? Scan back to the statement start.
fn preceding_use(toks: &[crate::lexer::Token], i: usize) -> bool {
    for t in toks[..i].iter().rev() {
        if t.is_ident("use") {
            return true;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
    }
    false
}

/// A one-line description of a flagged `use std::fs...` item, calling
/// out renames explicitly.
fn describe_use(toks: &[crate::lexer::Token], i: usize) -> String {
    // Scan forward to the end of the use item looking for `as`.
    for w in toks[i..].windows(2).take(32) {
        if w[0].is_punct(';') {
            break;
        }
        if w[0].is_ident("as") && w[1].kind == TokenKind::Ident {
            return format!(
                "`use std::fs` renamed to `{}`; renames do not launder direct I/O",
                w[1].text
            );
        }
    }
    "`use std::fs` import; route this through the Vfs seam".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint_src(src: &str) -> LintReport {
        let dir = std::env::temp_dir().join(format!(
            "ptlint-io-{}-{:p}",
            std::process::id(),
            &src as *const _
        ));
        let store = dir.join("crates/store/src");
        std::fs::create_dir_all(&store).unwrap();
        std::fs::write(store.join("demo.rs"), src).unwrap();
        let ws = Workspace::new(Path::new(&dir));
        let mut report = LintReport::new();
        run(&ws, &mut report);
        std::fs::remove_dir_all(&dir).ok();
        report
    }

    #[test]
    fn renamed_import_is_caught() {
        let r = lint_src("use std::fs as xfs;\nfn f() { let _ = xfs::read(\"x\"); }\n");
        assert_eq!(r.errors(), 1);
        assert!(r.findings[0].detail.contains("renamed to `xfs`"));
    }

    #[test]
    fn qualified_path_is_caught() {
        let r = lint_src("fn f() -> std::io::Result<Vec<u8>> { std::fs::read(\"x\") }\n");
        assert_eq!(r.errors(), 1);
        assert!(r.findings[0].detail.contains("fully qualified"));
    }

    #[test]
    fn test_code_and_allowed_sites_pass() {
        let r = lint_src(
            "// ptlint: allow(io) -- flock needs the raw fd\nfn f() { let _ = std::fs::File::open(\"x\"); }\n#[cfg(test)]\nmod tests { fn t() { std::fs::write(\"a\", \"b\").unwrap(); } }\n",
        );
        assert_eq!(r.errors(), 0, "{:?}", r.findings);
    }

    #[test]
    fn mention_in_comment_or_string_is_not_flagged() {
        let r = lint_src("// std::fs is banned here\nfn f() -> &'static str { \"std::fs\" }\n");
        assert_eq!(r.errors(), 0);
    }
}
