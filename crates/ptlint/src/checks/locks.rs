//! Check 3: static lock-order checking.
//!
//! Deadlock freedom in the engine rests on a global acquisition order
//! over a handful of locks (buffer-pool shard mutexes, frame rwlocks,
//! the writer gate, the WAL mutex, catalog/index rwlocks). That order
//! lives in `tools/lock-order.toml` as an explicit allowlist of edges,
//! each with a reason. This check re-derives the *observed* acquisition
//! graph from the source and compares:
//!
//! * an observed edge missing from the allowlist is an error
//!   (`locks.new-edge`) — new nesting must be a reviewed decision;
//! * a cycle anywhere in the union of observed and allowed edges is an
//!   error (`locks.cycle`) — the contract must stay a partial order;
//! * an allowlisted edge never observed is a warning
//!   (`locks.unused-edge`) unless its reason starts with `dynamic:`,
//!   which marks orders that flow through function pointers or other
//!   indirection the static pass cannot see (e.g. the buffer pool's
//!   writeback hook forcing the WAL).
//!
//! ## How the graph is extracted
//!
//! The pass lexes every file named in `[locks]` and walks each function
//! body, tracking which modelled locks are held at each point:
//!
//! * An acquisition is a call of `.lock()`, `.try_lock()`, `.read()`, or
//!   `.write()` **with an empty argument list** (which separates lock
//!   acquisition from `io::Read::read(&mut buf)`), attributed to a lock
//!   by `(file, receiver field)` per the `[locks]` table.
//! * Guards bound with `let` live to the end of their block (or an
//!   explicit `drop(binding)`); guards in temporaries live to the end
//!   of the enclosing statement — matching Rust's temporary-lifetime
//!   rules closely enough for lock-shaped code.
//! * Function summaries propagate to call sites: calling a function
//!   that (transitively) acquires lock `B` while holding `A` records
//!   the edge `A -> B`, and a call that *returns* a guard (`fn
//!   lock_shard(..) -> MutexGuard<..>`) counts as acquiring the lock at
//!   the call site. Summaries are matched by bare function name across
//!   the scanned files; ubiquitous names (`get`, `push`, ...) are
//!   excluded from summary matching to avoid false edges.
//!
//! The walker is an approximation — Rust's real temporary lifetimes and
//! trait dispatch are out of reach for a token-level pass — but it is a
//! *conservative* one for this codebase's lock style, and the allowlist
//! keeps any residual noise explicit and reviewed.

use super::Workspace;
use crate::config::LockOrderConfig;
use crate::findings::{Finding, LintReport, Severity};
use crate::lexer::{LexedFile, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One acquisition-order edge observed in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedEdge {
    /// Lock held at the moment of acquisition.
    pub from: String,
    /// Lock being acquired.
    pub to: String,
    /// File of the inner acquisition (workspace-relative).
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
}

/// Method names that acquire a lock when called with no arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "try_lock", "read", "write"];

/// Function names never matched against summaries at call sites: too
/// generic, they collide with std types across files.
const SUMMARY_STOPLIST: &[&str] = &[
    "lock", "try_lock", "read", "write", "drop", "new", "default", "len", "get", "get_mut",
    "insert", "remove", "push", "pop", "clone", "iter", "next", "unwrap", "expect", "map",
    "collect", "contains", "clear", "extend", "from", "into", "as_ref", "as_mut", "is_empty",
];

/// Run the lock-order check, appending findings to `report`.
pub fn run(ws: &Workspace, cfg: &LockOrderConfig, report: &mut LintReport) {
    anchor_check(ws, cfg, report);
    let observed = observed_edges(ws, cfg);

    // Dedup to (from, to) keeping the first location for the finding.
    let mut first: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for e in &observed {
        first
            .entry((e.from.clone(), e.to.clone()))
            .or_insert_with(|| (e.file.clone(), e.line));
    }

    for ((from, to), (file, line)) in &first {
        if !cfg.allows(from, to) {
            report.push(Finding {
                code: "locks.new-edge",
                severity: Severity::Error,
                file: file.clone(),
                line: *line,
                detail: format!(
                    "acquires `{to}` while holding `{from}`; this order is not in tools/lock-order.toml — add it with a reason or restructure"
                ),
            });
        }
    }

    for e in &cfg.edges {
        if e.reason.starts_with("dynamic:") {
            continue;
        }
        if !first.contains_key(&(e.from.clone(), e.to.clone())) {
            report.push(Finding {
                code: "locks.unused-edge",
                severity: Severity::Warning,
                file: "tools/lock-order.toml".to_string(),
                line: 0,
                detail: format!(
                    "allowlisted edge `{} -> {}` was not observed; delete it or mark its reason `dynamic:`",
                    e.from, e.to
                ),
            });
        }
    }

    // Cycles over the union of allowed and observed edges.
    let mut union: BTreeSet<(String, String)> = first.keys().cloned().collect();
    for e in &cfg.edges {
        union.insert((e.from.clone(), e.to.clone()));
    }
    for cycle in find_cycles(&union) {
        let anchor = first
            .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
            .cloned()
            .unwrap_or_else(|| ("tools/lock-order.toml".to_string(), 0));
        // Close the loop in the rendering: `a -> b` reads like an edge,
        // `a -> b -> a` reads like the cycle it is.
        let mut path = cycle.join(" -> ");
        if let Some(head) = cycle.first() {
            path.push_str(" -> ");
            path.push_str(head);
        }
        report.push(Finding {
            code: "locks.cycle",
            severity: Severity::Error,
            file: anchor.0,
            line: anchor.1,
            detail: format!("acquisition-order cycle: {path}"),
        });
    }
}

/// Every lock in `[locks]` must still be anchored to a real field in its
/// file, so a refactor that moves a lock cannot silently shrink the
/// model.
fn anchor_check(ws: &Workspace, cfg: &LockOrderConfig, report: &mut LintReport) {
    for lock in &cfg.locks {
        let Some(lexed) = ws.lex(&lock.file) else {
            report.push(Finding {
                code: "locks.missing-lock-field",
                severity: Severity::Error,
                file: lock.file.clone(),
                line: 0,
                detail: format!("file for lock `{}` is missing or unreadable", lock.name),
            });
            continue;
        };
        let found = lexed.tokens.iter().any(|t| t.is_ident(&lock.field));
        if !found {
            report.push(Finding {
                code: "locks.missing-lock-field",
                severity: Severity::Error,
                file: lock.file.clone(),
                line: 0,
                detail: format!(
                    "lock `{}` is anchored to `{}::{}` but that identifier no longer appears; update tools/lock-order.toml",
                    lock.name, lock.file, lock.field
                ),
            });
        }
    }
}

/// Extract the full observed acquisition graph (also powers
/// `--list-edges`).
pub fn observed_edges(ws: &Workspace, cfg: &LockOrderConfig) -> Vec<ObservedEdge> {
    // (file, field) -> lock name.
    let mut lock_of: BTreeMap<(&str, &str), &str> = BTreeMap::new();
    let mut files: BTreeSet<&str> = BTreeSet::new();
    for l in &cfg.locks {
        lock_of.insert((l.file.as_str(), l.field.as_str()), l.name.as_str());
        files.insert(l.file.as_str());
    }

    // Pass 1: function spans per file, then direct-acquisition summaries.
    let mut fns: Vec<FnDef> = Vec::new();
    for file in &files {
        if let Some(lexed) = ws.lex(file) {
            extract_fns(&lexed, file, &mut fns);
        }
    }
    let mut summaries: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &fns {
        let Some(lexed) = ws.lex(&f.file) else {
            continue;
        };
        let direct = direct_acquisitions(&lexed, f, &lock_of);
        summaries.entry(f.name.clone()).or_default().extend(direct);
    }
    // Fixpoint: fold callee summaries into callers.
    loop {
        let mut changed = false;
        for f in &fns {
            let Some(lexed) = ws.lex(&f.file) else {
                continue;
            };
            let mut acc: BTreeSet<String> = summaries.get(&f.name).cloned().unwrap_or_default();
            let before = acc.len();
            for callee in called_names(&lexed, f) {
                if let Some(s) = summaries.get(&callee) {
                    acc.extend(s.iter().cloned());
                }
            }
            if acc.len() != before {
                changed = true;
            }
            summaries.insert(f.name.clone(), acc);
        }
        if !changed {
            break;
        }
    }

    // Name -> returns-a-guard (ambiguity resolves to "yes", which errs
    // toward reporting more held-lock context rather than less).
    let mut returns_guard: BTreeMap<String, bool> = BTreeMap::new();
    for f in &fns {
        let e = returns_guard.entry(f.name.clone()).or_insert(false);
        *e = *e || f.returns_guard;
    }

    // Pass 2: walk each function with a held-lock stack.
    let mut edges = Vec::new();
    for f in &fns {
        let Some(lexed) = ws.lex(&f.file) else {
            continue;
        };
        walk_function(&lexed, f, &lock_of, &summaries, &returns_guard, &mut edges);
    }
    edges
}

/// A function definition found in a scanned file.
struct FnDef {
    file: String,
    name: String,
    /// Token range of the body, inside the braces.
    body: (usize, usize),
    /// Whether the return type names a `*Guard` type.
    returns_guard: bool,
}

fn extract_fns(lexed: &LexedFile, file: &str, out: &mut Vec<FnDef>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && !lexed.in_test[i]
            && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let (bstart, bend) = lexed.brace_span(j);
                let returns_guard = toks[i + 2..j]
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text.ends_with("Guard"));
                out.push(FnDef {
                    file: file.to_string(),
                    name,
                    body: (bstart, bend),
                    returns_guard,
                });
                i = bstart;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Is token `i` the method ident of an empty-args acquisition call
/// (`recv.lock()`)? Returns the receiver field name.
fn acquisition_at<'a>(toks: &'a [Token], i: usize) -> Option<&'a str> {
    let t = &toks[i];
    if t.kind != TokenKind::Ident || !ACQUIRE_METHODS.contains(&t.text.as_str()) {
        return None;
    }
    if i < 2 || !toks[i - 1].is_punct('.') {
        return None;
    }
    if !(toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')')))
    {
        return None;
    }
    (toks[i - 2].kind == TokenKind::Ident).then(|| toks[i - 2].text.as_str())
}

/// Locks a function acquires directly in its own body.
fn direct_acquisitions(
    lexed: &LexedFile,
    f: &FnDef,
    lock_of: &BTreeMap<(&str, &str), &str>,
) -> BTreeSet<String> {
    let toks = &lexed.tokens;
    let mut out = BTreeSet::new();
    for i in f.body.0..f.body.1 {
        if let Some(field) = acquisition_at(toks, i) {
            if let Some(lock) = lock_of.get(&(f.file.as_str(), field)) {
                out.insert((*lock).to_string());
            }
        }
    }
    out
}

/// Names of functions called from `f`'s body (idents followed by `(`,
/// excluding the stoplist and acquisition methods).
fn called_names(lexed: &LexedFile, f: &FnDef) -> BTreeSet<String> {
    let toks = &lexed.tokens;
    let mut out = BTreeSet::new();
    for i in f.body.0..f.body.1 {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !SUMMARY_STOPLIST.contains(&t.text.as_str())
        {
            out.insert(t.text.clone());
        }
    }
    out
}

/// One lock held at a point during the walk.
struct Held {
    lock: String,
    depth: i32,
    binder: Option<String>,
    statement_scoped: bool,
    /// `drop(binder)` seen in a block deeper than the acquisition: the
    /// release is conditional on that branch, so the lock is only
    /// suspended until the block exits (a `let..else { drop(g);
    /// continue }` arm must not blind the rest of the function).
    suspended_at: Option<i32>,
}

fn walk_function(
    lexed: &LexedFile,
    f: &FnDef,
    lock_of: &BTreeMap<(&str, &str), &str>,
    summaries: &BTreeMap<String, BTreeSet<String>>,
    returns_guard: &BTreeMap<String, bool>,
    edges: &mut Vec<ObservedEdge>,
) {
    let toks = &lexed.tokens;
    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = f.body.0;
    while i < f.body.1 {
        let t = &toks[i];
        if lexed.in_test[i] {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            // A block closing back to a temporary's depth ends the
            // statement that created it (`for x in m.read().iter() {..}`
            // drops the iterator guard here), while let-bound guards
            // live on to the end of their scope.
            held.retain(|h| h.depth <= depth && !(h.statement_scoped && h.depth == depth));
            // Conditional drops lapse when their branch exits.
            for h in &mut held {
                if h.suspended_at.is_some_and(|d| d > depth) {
                    h.suspended_at = None;
                }
            }
        } else if t.is_punct(';') {
            held.retain(|h| !(h.statement_scoped && h.depth >= depth));
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
        {
            let victim = toks[i + 2].text.clone();
            let mut keep = Vec::new();
            for mut h in held.drain(..) {
                if h.binder.as_deref() == Some(victim.as_str()) {
                    if depth > h.depth {
                        h.suspended_at = Some(depth);
                    } else {
                        continue; // unconditional release
                    }
                }
                keep.push(h);
            }
            held = keep;
        } else if let Some(field) = acquisition_at(toks, i) {
            if let Some(lock) = lock_of.get(&(f.file.as_str(), field)) {
                record_edges(&held, lock, &f.file, t.line, edges);
                held.push(make_held(lock, toks, f.body.0, i, i + 2, depth));
            }
        } else if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !SUMMARY_STOPLIST.contains(&t.text.as_str())
            && t.text != f.name
        {
            if let Some(acquired) = summaries.get(&t.text) {
                for lock in acquired {
                    record_edges(&held, lock, &f.file, t.line, edges);
                }
                // A call that returns a guard keeps its single lock held
                // at the call site (the `lock_shard` pattern).
                if acquired.len() == 1 && returns_guard.get(&t.text).copied().unwrap_or(false) {
                    if let Some(lock) = acquired.iter().next() {
                        let close = matching_paren(toks, i + 1);
                        held.push(make_held(lock, toks, f.body.0, i, close, depth));
                    }
                }
            }
        }
        i += 1;
    }
}

/// Build a [`Held`] entry for an acquisition whose call closes at token
/// `close`. The guard is let-bound only when the statement ends right
/// after the call — `let g = x.lock();`. A longer chain
/// (`let id = x.write().create(..)?;`) means the guard is a temporary
/// that dies at the end of the statement, whatever the `let` binds.
fn make_held(
    lock: &str,
    toks: &[Token],
    body_start: usize,
    i: usize,
    close: usize,
    depth: i32,
) -> Held {
    let ends_statement = toks.get(close + 1).is_some_and(|t| t.is_punct(';'));
    let binder = if ends_statement {
        let_binder(toks, body_start, i)
    } else {
        None
    };
    Held {
        lock: lock.to_string(),
        depth,
        statement_scoped: binder.is_none(),
        binder,
        suspended_at: None,
    }
}

/// Index of the `)` matching the `(` at `open` (or the last token).
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Record one edge from every currently-held, unsuspended lock to `to`.
fn record_edges(held: &[Held], to: &str, file: &str, line: u32, edges: &mut Vec<ObservedEdge>) {
    for h in held {
        if h.suspended_at.is_none() && h.lock != to {
            edges.push(ObservedEdge {
                from: h.lock.clone(),
                to: to.to_string(),
                file: file.to_string(),
                line,
            });
        }
    }
}

/// Find the first ident bound by `let` in the statement containing
/// token `i` (scanning back to the statement start), if any.
fn let_binder(toks: &[Token], body_start: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > body_start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            // First ident after `let`, skipping `mut`/`ref` and pattern
            // punctuation.
            for k in toks.iter().skip(j + 1).take(8) {
                if k.kind == TokenKind::Ident && k.text != "mut" && k.text != "ref" {
                    return Some(k.text.clone());
                }
            }
            return None;
        }
    }
    None
}

/// All elementary cycles in the edge set, as lock-name paths. Small
/// graphs only (the lock model has a dozen nodes).
fn find_cycles(edges: &BTreeSet<(String, String)>) -> Vec<Vec<String>> {
    let nodes: BTreeSet<&String> = edges.iter().flat_map(|(a, b)| [a, b]).collect();
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_sigs: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &nodes {
        let mut path: Vec<&String> = vec![start];
        dfs(
            start,
            start,
            edges,
            &mut path,
            &mut cycles,
            &mut seen_sigs,
            0,
        );
    }
    cycles
}

fn dfs<'a>(
    start: &'a String,
    at: &'a String,
    edges: &'a BTreeSet<(String, String)>,
    path: &mut Vec<&'a String>,
    cycles: &mut Vec<Vec<String>>,
    seen_sigs: &mut BTreeSet<Vec<String>>,
    depth: usize,
) {
    if depth > 16 {
        return;
    }
    for (a, b) in edges.iter() {
        if a != at {
            continue;
        }
        if b == start {
            // Canonical signature: rotate so the smallest node is first.
            let cyc: Vec<String> = path.iter().map(|s| (*s).clone()).collect();
            let min_idx = cyc
                .iter()
                .enumerate()
                .min_by(|x, y| x.1.cmp(y.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut sig = cyc[min_idx..].to_vec();
            sig.extend_from_slice(&cyc[..min_idx]);
            if seen_sigs.insert(sig.clone()) {
                cycles.push(sig);
            }
        } else if !path.contains(&b) {
            path.push(b);
            dfs(start, b, edges, path, cycles, seen_sigs, depth + 1);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const CFG: &str = r#"
[locks]
"a" = "src/demo.rs::lock_a"
"b" = "src/demo.rs::lock_b"
[edges]
"a -> b" = "a wraps b by design"
"#;

    fn ws_with(src: &str) -> (Workspace, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ptlint-locks-{}-{:p}",
            std::process::id(),
            &src as *const _
        ));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(dir.join("src/demo.rs"), src).unwrap();
        (Workspace::new(Path::new(&dir)), dir)
    }

    #[test]
    fn nested_acquisition_yields_edge() {
        let (ws, dir) = ws_with(
            "fn f(&self) { let g = self.lock_a.lock(); let h = self.lock_b.lock(); use_both(g, h); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("a", "b"));
        let mut report = LintReport::new();
        run(&ws, &cfg, &mut report);
        assert_eq!(report.errors(), 0, "{:?}", report.findings);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reversed_order_is_a_new_edge_and_a_cycle() {
        let (ws, dir) = ws_with(
            "fn f(&self) { let g = self.lock_a.lock(); touch(self.lock_b.lock()); }\nfn g(&self) { let h = self.lock_b.lock(); touch(self.lock_a.lock()); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let mut report = LintReport::new();
        run(&ws, &cfg, &mut report);
        let codes: Vec<&str> = report.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"locks.new-edge"), "{codes:?}");
        assert!(codes.contains(&"locks.cycle"), "{codes:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_releases_the_guard() {
        let (ws, dir) = ws_with(
            "fn f(&self) { let g = self.lock_a.lock(); drop(g); let h = self.lock_b.lock(); touch(h); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert!(edges.is_empty(), "{edges:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let (ws, dir) = ws_with(
            "fn f(&self) { self.lock_a.lock().poke(); let h = self.lock_b.lock(); touch(h); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert!(edges.is_empty(), "{edges:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chained_let_binds_the_result_not_the_guard() {
        // `let id = ...write().create(..)?;` — the guard is a temporary;
        // a later acquisition in the next statement must not see it.
        let (ws, dir) = ws_with(
            "fn f(&self) { let id = self.lock_a.lock().create()?; let h = self.lock_b.lock(); touch(id, h); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert!(edges.is_empty(), "{edges:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn conditional_drop_only_releases_inside_its_branch() {
        // The drop in the inner block is conditional; after the block
        // exits the guard is live again and the edge must be seen.
        let (ws, dir) = ws_with(
            "fn f(&self) { let g = self.lock_a.lock(); if bad() { drop(g); return; } let h = self.lock_b.lock(); touch(h); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("a", "b"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loop_iterator_guard_dies_when_the_loop_closes() {
        let (ws, dir) = ws_with(
            "fn f(&self) { for t in self.lock_a.lock().iter() { touch(t); } let h = self.lock_b.lock(); touch(h); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert!(edges.is_empty(), "{edges:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loop_iterator_guard_is_held_during_the_body() {
        let (ws, dir) = ws_with(
            "fn f(&self) { for t in self.lock_a.lock().iter() { let h = self.lock_b.lock(); touch(t, h); } }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("a", "b"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn callee_summary_produces_cross_function_edge() {
        let (ws, dir) = ws_with(
            "fn inner(&self) { let h = self.lock_b.lock(); touch(h); }\nfn outer(&self) { let g = self.lock_a.lock(); self.inner(); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("a", "b"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scope_exit_releases_inner_guard() {
        let (ws, dir) = ws_with(
            "fn f(&self) { { let g = self.lock_b.lock(); touch(g); } let h = self.lock_a.lock(); touch(h); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let edges = observed_edges(&ws, &cfg);
        assert!(edges.is_empty(), "{edges:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unused_edge_warns_unless_dynamic() {
        // Mention both lock fields so the anchor check stays quiet.
        let (ws, dir) = ws_with(
            "struct S { lock_a: M, lock_b: M }\nfn f(&self) { let _x = self.lock_a.lock(); }",
        );
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let mut report = LintReport::new();
        run(&ws, &cfg, &mut report);
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.findings[0].code, "locks.unused-edge");

        let dyn_cfg = LockOrderConfig::parse(
            "[locks]\n\"a\" = \"src/demo.rs::lock_a\"\n\"b\" = \"src/demo.rs::lock_b\"\n[edges]\n\"a -> b\" = \"dynamic: via hook\"\n",
        )
        .unwrap();
        let mut report = LintReport::new();
        run(&ws, &dyn_cfg, &mut report);
        assert_eq!(report.warnings(), 0, "{:?}", report.findings);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_anchor_field_is_an_error() {
        let (ws, dir) = ws_with("fn f() {}");
        let cfg = LockOrderConfig::parse(CFG).unwrap();
        let mut report = LintReport::new();
        run(&ws, &cfg, &mut report);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "locks.missing-lock-field"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
