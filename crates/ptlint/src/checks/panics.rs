//! Check 2: panic-freedom on hot/untrusted paths.
//!
//! A panic in the wire decoder is a remote denial of service; a panic
//! under the buffer-pool or WAL mutex poisons nothing (parking_lot)
//! but still kills the worker mid-update. The files listed in
//! [`HOT_FILES`] — the request path and the storage-engine core — must
//! not contain `unwrap`/`expect`, panicking macros, or bare slice
//! indexing outside `#[cfg(test)]`.
//!
//! Three escape levels, in preference order: restructure the code so
//! the invariant is type-checked (`try_into` to an array, `.get()`),
//! return a typed error, or — when the invariant is real but invisible
//! to the type system — annotate the site with
//! `// ptlint: allow(panic) -- <why the index/expect cannot fire>`.

use super::{Allows, Workspace};
use crate::findings::{Finding, LintReport, Severity};
use crate::lexer::{LexedFile, Token, TokenKind};

/// Files that must be panic-free outside tests.
pub const HOT_FILES: &[&str] = &[
    "crates/server/src/wire.rs",
    "crates/server/src/proto.rs",
    "crates/server/src/server.rs",
    "crates/store/src/page.rs",
    "crates/store/src/btree.rs",
    "crates/store/src/wal.rs",
    "crates/store/src/buffer.rs",
];

/// Macros that compile to a panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without it being an index
/// expression (patterns, types, array literals).
const NOT_INDEX_BEFORE: &[&str] = &[
    "let", "mut", "ref", "in", "return", "else", "as", "box", "move", "break", "continue", "where",
    "unsafe", "dyn", "impl", "for", "match", "if", "while", "const", "static", "type", "enum",
    "struct", "union", "fn", "pub", "use", "mod", "crate", "yield", "await",
];

/// Run the panic-freedom check, appending findings to `report`.
pub fn run(ws: &Workspace, report: &mut LintReport) {
    for file in HOT_FILES {
        let Some(lexed) = ws.lex(file) else { continue };
        check_file(&lexed, file, report);
    }
}

fn check_file(lexed: &LexedFile, file: &str, report: &mut LintReport) {
    let allows = Allows::parse(lexed);
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.in_test[i] {
            continue;
        }
        let t = &toks[i];
        let finding = match t.kind {
            TokenKind::Ident
                if (t.text == "unwrap" || t.text == "expect") && is_method_call(toks, i) =>
            {
                Some((
                    if t.text == "unwrap" {
                        "panics.unwrap"
                    } else {
                        "panics.expect"
                    },
                    format!(
                        "`.{}()` on a hot/untrusted path; return a typed error instead",
                        t.text
                    ),
                ))
            }
            TokenKind::Ident
                if PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                Some((
                    "panics.panic-macro",
                    format!("`{}!` on a hot/untrusted path", t.text),
                ))
            }
            TokenKind::Punct if t.text == "[" && is_index_expr(toks, i) => Some((
                "panics.index",
                "bare slice indexing can panic; use `.get()`/`get_mut()` or prove the bound"
                    .to_string(),
            )),
            _ => None,
        };
        if let Some((code, detail)) = finding {
            if !allows.permits("panic", t.line) {
                report.push(Finding {
                    code,
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: t.line,
                    detail,
                });
            }
        }
    }
    allows.report_unjustified(file, report);
}

/// `.unwrap()` / `.expect(` as a method call: preceded by `.`,
/// followed by `(`. Rules out `unwrap_or` (distinct ident) and paths
/// like `Option::unwrap` used as a value (no preceding dot — flagged
/// anyway if called? No: `map(Option::unwrap)` has preceding `::`,
/// which this deliberately also treats as a call site).
fn is_method_call(toks: &[Token], i: usize) -> bool {
    let after_paren = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    if i == 0 {
        return false;
    }
    let prev_dot = toks[i - 1].is_punct('.');
    let prev_path = toks[i - 1].is_punct(':');
    (prev_dot && after_paren) || prev_path
}

/// Is the `[` at `i` an index expression? True when the previous token
/// can end an expression being indexed: an identifier (minus keywords),
/// a closing `)`/`]`, or `?`.
fn is_index_expr(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    match prev.kind {
        TokenKind::Ident => !NOT_INDEX_BEFORE.contains(&prev.text.as_str()),
        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<&'static str> {
        let lexed = LexedFile::lex(src);
        let mut report = LintReport::new();
        check_file(&lexed, "hot.rs", &mut report);
        report.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn unwrap_and_expect_are_flagged_but_unwrap_or_is_not() {
        assert_eq!(
            findings("fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
            vec!["panics.unwrap"]
        );
        assert_eq!(
            findings("fn f(x: Option<u8>) -> u8 { x.expect(\"set\") }"),
            vec!["panics.expect"]
        );
        assert!(findings("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
        assert!(findings("fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }").is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        assert_eq!(
            findings("fn f() { panic!(\"boom\") }"),
            vec!["panics.panic-macro"]
        );
        assert_eq!(
            findings("fn f() { unreachable!() }"),
            vec!["panics.panic-macro"]
        );
    }

    #[test]
    fn indexing_expressions_are_flagged_but_types_and_patterns_are_not() {
        assert_eq!(
            findings("fn f(b: &[u8]) -> u8 { b[0] }"),
            vec!["panics.index"]
        );
        assert_eq!(
            findings("fn f(b: &[u8]) -> &[u8] { &b[1..3] }"),
            vec!["panics.index"]
        );
        assert!(findings("fn f() -> [u8; 4] { [0u8; 4] }").is_empty());
        assert!(findings("struct S { b: [u8; 8] }").is_empty());
        assert!(findings("fn f(v: Vec<[u8; 4]>) {}").is_empty());
        assert!(findings("#[derive(Debug)]\nstruct T;").is_empty());
        assert!(findings("fn f() { let [a, b] = [1, 2]; let _ = (a, b); }").is_empty());
        // vec![..] is a macro literal, not indexing.
        assert!(findings("fn f() -> Vec<u8> { vec![1, 2] }").is_empty());
    }

    #[test]
    fn chained_and_postfix_receivers_are_flagged() {
        assert_eq!(
            findings("fn f(v: Vec<Vec<u8>>) -> u8 { v[0][1] }"),
            vec!["panics.index", "panics.index"]
        );
        assert_eq!(
            findings("fn f() -> u8 { g().buf[0] }"),
            vec!["panics.index"]
        );
    }

    #[test]
    fn allow_panic_with_reason_suppresses() {
        assert!(findings(
            "fn f(b: &[u8; 8]) -> u8 {\n    // ptlint: allow(panic) -- fixed-size array, index is const\n    b[3]\n}"
        )
        .is_empty());
        assert_eq!(
            findings("fn f(b: &[u8]) -> u8 {\n    // ptlint: allow(panic)\n    b[3]\n}"),
            vec!["panics.index", "directive.unjustified-allow"]
        );
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(findings("#[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }").is_empty());
    }
}
