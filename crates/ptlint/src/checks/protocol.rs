//! Check 4: cross-file protocol and metric consistency.
//!
//! The wire protocol's moving parts live in four places that must stay
//! in sync by hand: the opcode constants in `proto.rs`'s `mod op`, the
//! `Request`/`Response` enums with their `opcode`/`label`/`encode`/
//! `decode` methods, the dispatch `match` in `server.rs`, and the
//! `OP_LABELS` histogram index in `metrics.rs`. PR 6 fixed a bug of
//! exactly this class (an opcode added without its label) by hand; this
//! check makes the whole class unrepresentable:
//!
//! * every `Request`/`Response` enum variant must appear in each of the
//!   enum's `opcode`, `label`/`cost` (requests only), `encode`, and
//!   `decode` method bodies — `cost` is the admission controller's
//!   opcode-cost table, so a variant missing there would dodge load
//!   shedding;
//! * every request opcode constant must be matched in `Request::decode`
//!   and every response constant in `Response::decode`;
//! * every `Request` variant must be dispatched (`Request::<V>`) in
//!   `server.rs` outside tests;
//! * the string set returned by `Request::label` must equal the
//!   `OP_LABELS` array;
//! * every metric name the engine renders (a dotted string literal in
//!   either `metrics.rs`) must be documented in `docs/METRICS.md`,
//!   where `{...}` format segments match `<...>` placeholders and a
//!   documented histogram name also covers its derived
//!   `.count`/`.mean`/`.p99` lines.

use super::Workspace;
use crate::findings::{Finding, LintReport, Severity};
use crate::lexer::{LexedFile, Token, TokenKind};
use std::collections::BTreeSet;

const PROTO: &str = "crates/server/src/proto.rs";
const SERVER: &str = "crates/server/src/server.rs";
const SERVER_METRICS: &str = "crates/server/src/metrics.rs";
const STORE_METRICS: &str = "crates/store/src/metrics.rs";
const METRICS_DOC: &str = "docs/METRICS.md";

/// Run the protocol/metric consistency check.
pub fn run(ws: &Workspace, report: &mut LintReport) {
    protocol_check(ws, report);
    metrics_check(ws, report);
}

fn protocol_check(ws: &Workspace, report: &mut LintReport) {
    let Some(proto) = ws.lex(PROTO) else {
        report.push(missing_file(PROTO));
        return;
    };
    let Some(server) = ws.lex(SERVER) else {
        report.push(missing_file(SERVER));
        return;
    };
    let Some(metrics) = ws.lex(SERVER_METRICS) else {
        report.push(missing_file(SERVER_METRICS));
        return;
    };

    // Opcode constants from `mod op`, split request/response by value.
    let (req_consts, resp_consts) = op_consts(&proto);

    for (enum_name, consts) in [("Request", &req_consts), ("Response", &resp_consts)] {
        let variants = enum_variants(&proto, enum_name);
        if variants.is_empty() {
            report.push(Finding {
                code: "protocol.missing-enum",
                severity: Severity::Error,
                file: PROTO.to_string(),
                line: 0,
                detail: format!("could not locate `enum {enum_name}`"),
            });
            continue;
        }
        let methods: &[&str] = if enum_name == "Request" {
            // `cost` keeps the admission controller's opcode-cost table
            // total: a new request variant without a cost entry would
            // silently dodge load shedding.
            &["opcode", "label", "encode", "decode", "cost"]
        } else {
            &["opcode", "encode", "decode"]
        };
        for method in methods {
            let Some(span) = impl_method_span(&proto, enum_name, method) else {
                report.push(Finding {
                    code: "protocol.missing-method",
                    severity: Severity::Error,
                    file: PROTO.to_string(),
                    line: 0,
                    detail: format!("could not locate `{enum_name}::{method}`"),
                });
                continue;
            };
            for v in &variants {
                if !span_has_ident(&proto, span, v) {
                    report.push(Finding {
                        code: "protocol.missing-arm",
                        severity: Severity::Error,
                        file: PROTO.to_string(),
                        line: proto.tokens[span.0].line,
                        detail: format!("`{enum_name}::{v}` has no arm in `{enum_name}::{method}`"),
                    });
                }
            }
            // Every opcode const must be consumed by decode.
            if *method == "decode" {
                for c in consts {
                    if !span_has_ident(&proto, span, c) {
                        report.push(Finding {
                            code: "protocol.missing-decode",
                            severity: Severity::Error,
                            file: PROTO.to_string(),
                            line: proto.tokens[span.0].line,
                            detail: format!(
                                "opcode `op::{c}` is never matched in `{enum_name}::decode`"
                            ),
                        });
                    }
                }
            }
        }
        // Dispatch: every Request variant appears as `Request::V` in
        // server.rs outside tests.
        if enum_name == "Request" {
            for v in &variants {
                if !dispatched(&server, v) {
                    report.push(Finding {
                        code: "protocol.missing-dispatch",
                        severity: Severity::Error,
                        file: SERVER.to_string(),
                        line: 0,
                        detail: format!("`Request::{v}` is never dispatched in server.rs"),
                    });
                }
            }
        }
    }

    // label() string set == OP_LABELS array.
    if let Some(label_span) = impl_method_span(&proto, "Request", "label") {
        let labels = strings_in_span(&proto, label_span);
        let (op_labels, op_labels_line) = op_labels_array(&metrics);
        for l in &labels {
            if !op_labels.contains(l) {
                report.push(Finding {
                    code: "protocol.missing-op-label",
                    severity: Severity::Error,
                    file: SERVER_METRICS.to_string(),
                    line: op_labels_line,
                    detail: format!(
                        "request label \"{l}\" has no OP_LABELS entry; its latency histogram would be dropped"
                    ),
                });
            }
        }
        for l in &op_labels {
            if !labels.contains(l) {
                report.push(Finding {
                    code: "protocol.stale-op-label",
                    severity: Severity::Error,
                    file: SERVER_METRICS.to_string(),
                    line: op_labels_line,
                    detail: format!("OP_LABELS entry \"{l}\" matches no `Request::label` value"),
                });
            }
        }
    }
}

fn missing_file(path: &str) -> Finding {
    Finding {
        code: "protocol.missing-file",
        severity: Severity::Error,
        file: path.to_string(),
        line: 0,
        detail: "file is missing or unreadable".to_string(),
    }
}

/// `mod op` constants split into (requests, responses) by value.
fn op_consts(proto: &LexedFile) -> (Vec<String>, Vec<String>) {
    let toks = &proto.tokens;
    let mut req = Vec::new();
    let mut resp = Vec::new();
    let Some(open) = find_seq(toks, &["mod", "op"]).and_then(|i| next_open_brace(toks, i)) else {
        return (req, resp);
    };
    let (start, end) = proto.brace_span(open);
    let mut i = start;
    while i + 5 < end {
        // const NAME : u8 = VALUE ;
        if toks[i].is_ident("const")
            && toks[i + 1].kind == TokenKind::Ident
            && toks[i + 2].is_punct(':')
        {
            let name = toks[i + 1].text.clone();
            // Find the value literal after `=`.
            let mut j = i + 3;
            while j < end && !toks[j].is_punct('=') {
                j += 1;
            }
            if let Some(val) = toks.get(j + 1).filter(|t| t.kind == TokenKind::Num) {
                let v = parse_u8(&val.text);
                if let Some(v) = v {
                    if v < 0x80 {
                        req.push(name);
                    } else {
                        resp.push(name);
                    }
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    (req, resp)
}

fn parse_u8(text: &str) -> Option<u8> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Variant names of `enum <name>`.
fn enum_variants(proto: &LexedFile, name: &str) -> Vec<String> {
    let toks = &proto.tokens;
    let Some(open) = find_seq(toks, &["enum", name]).and_then(|i| next_open_brace(toks, i)) else {
        return Vec::new();
    };
    let (start, end) = proto.brace_span(open);
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = true;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(',') {
                expect_variant = true;
            } else if t.is_punct('#') {
                // attribute on the next variant; skip its [ ... ] below
            } else if expect_variant && t.kind == TokenKind::Ident {
                out.push(t.text.clone());
                expect_variant = false;
            }
        }
        i += 1;
    }
    out
}

/// Token span of `fn <method>` inside `impl <ty>` (first matching impl).
fn impl_method_span(file: &LexedFile, ty: &str, method: &str) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    let impl_open = find_seq(toks, &["impl", ty]).and_then(|i| next_open_brace(toks, i))?;
    let (istart, iend) = file.brace_span(impl_open);
    let mut i = istart;
    while i + 1 < iend {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(method) {
            let open = next_open_brace(toks, i + 1)?;
            return Some(file.brace_span(open));
        }
        i += 1;
    }
    None
}

/// First index where idents `seq` appear consecutively, outside tests.
fn find_seq(toks: &[Token], seq: &[&str]) -> Option<usize> {
    'outer: for i in 0..toks.len().saturating_sub(seq.len() - 1) {
        for (k, want) in seq.iter().enumerate() {
            if !toks[i + k].is_ident(want) {
                continue 'outer;
            }
        }
        return Some(i + seq.len() - 1);
    }
    None
}

/// Index of the next `{` after `i` (skipping to it), if any.
fn next_open_brace(toks: &[Token], i: usize) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(i)
        .find(|(_, t)| t.is_punct('{'))
        .map(|(j, _)| j)
}

fn span_has_ident(file: &LexedFile, span: (usize, usize), name: &str) -> bool {
    file.tokens[span.0..span.1].iter().any(|t| t.is_ident(name))
}

fn strings_in_span(file: &LexedFile, span: (usize, usize)) -> BTreeSet<String> {
    file.tokens[span.0..span.1]
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| t.text.clone())
        .collect()
}

/// `Request :: V` occurrence in non-test server code.
fn dispatched(server: &LexedFile, variant: &str) -> bool {
    let toks = &server.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].is_ident("Request")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident(variant)
            && !server.in_test[i]
        {
            return true;
        }
    }
    false
}

/// Contents and line of the `OP_LABELS` array literal.
fn op_labels_array(metrics: &LexedFile) -> (BTreeSet<String>, u32) {
    let toks = &metrics.tokens;
    for i in 0..toks.len() {
        if toks[i].is_ident("OP_LABELS") && !metrics.in_test[i] {
            // const OP_LABELS : [...] = [ "a", "b", ... ];
            let mut j = i;
            while j < toks.len() && !toks[j].is_punct('=') {
                j += 1;
            }
            let mut out = BTreeSet::new();
            let mut depth = 0i32;
            for t in toks.iter().skip(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth > 0 && t.kind == TokenKind::Str {
                    out.insert(t.text.clone());
                }
            }
            return (out, toks[i].line);
        }
    }
    (BTreeSet::new(), 0)
}

// ---------------------------------------------------------------------
// Metric-name documentation
// ---------------------------------------------------------------------

fn metrics_check(ws: &Workspace, report: &mut LintReport) {
    let Some(doc) = ws.read(METRICS_DOC) else {
        report.push(Finding {
            code: "metrics.missing-doc",
            severity: Severity::Error,
            file: METRICS_DOC.to_string(),
            line: 0,
            detail: "docs/METRICS.md is missing".to_string(),
        });
        return;
    };
    let documented = documented_names(&doc);
    for file in [STORE_METRICS, SERVER_METRICS] {
        let Some(lexed) = ws.lex(file) else { continue };
        for (i, t) in lexed.tokens.iter().enumerate() {
            if t.kind != TokenKind::Str || lexed.in_test[i] || !is_metric_name(&t.text) {
                continue;
            }
            if !name_documented(&t.text, &documented) {
                report.push(Finding {
                    code: "metrics.undocumented",
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: t.line,
                    detail: format!("metric \"{}\" is not documented in docs/METRICS.md", t.text),
                });
            }
        }
    }
}

/// Does a string literal look like a metric name? Lowercase dotted
/// path, possibly with `{...}` format segments.
fn is_metric_name(s: &str) -> bool {
    if !s.contains('.') || !s.starts_with(|c: char| c.is_ascii_lowercase()) {
        return false;
    }
    let mut segments = 0;
    for seg in s.split('.') {
        if seg.is_empty() {
            return false;
        }
        let fmt = seg.starts_with('{') && seg.ends_with('}');
        if !fmt
            && !seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Backtick-quoted dotted names from the doc, as segment vectors where
/// `<...>` and `*` become wildcards.
fn documented_names(doc: &str) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for chunk in doc.split('`').skip(1).step_by(2) {
        if chunk.contains('.') && !chunk.contains(' ') {
            let segs: Vec<String> = chunk.split('.').map(|s| s.to_string()).collect();
            if segs.iter().all(|s| !s.is_empty()) {
                out.push(segs);
            }
        }
    }
    out
}

/// Match a code-side name against the documented set. `{...}` segments
/// in code match `<...>` segments in docs; a doc entry that is a prefix
/// of the code name (at a dot boundary, or via a trailing `*`) also
/// counts — histogram names cover their derived `.count`/`.mean`/`.p99`
/// renderings.
fn name_documented(name: &str, documented: &[Vec<String>]) -> bool {
    let code_segs: Vec<&str> = name.split('.').collect();
    'next: for doc in documented {
        let doc_len = if doc.last().is_some_and(|s| s == "*") {
            doc.len() - 1
        } else {
            doc.len()
        };
        let explicit_wildcard_tail = doc.last().is_some_and(|s| s == "*");
        if code_segs.len() < doc_len {
            continue;
        }
        // A plain doc entry may be a strict prefix only when the code
        // name extends it with derived histogram suffixes.
        if code_segs.len() > doc_len && !explicit_wildcard_tail {
            let tail = &code_segs[doc_len..];
            let derived = tail
                .iter()
                .all(|s| matches!(*s, "count" | "mean" | "p99" | "max" | "sum"));
            if !derived {
                continue;
            }
        }
        for (c, d) in code_segs.iter().zip(doc.iter().take(doc_len)) {
            let code_wild = c.starts_with('{') && c.ends_with('}');
            let doc_wild = d.starts_with('<') && d.ends_with('>');
            if !(code_wild || doc_wild || c == d) {
                continue 'next;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_shape() {
        assert!(is_metric_name("wal.syncs"));
        assert!(is_metric_name("pool.shard.{}.hits"));
        assert!(is_metric_name("server.op.{label}.count"));
        assert!(!is_metric_name("1.50us"));
        assert!(!is_metric_name("no_dots"));
        assert!(!is_metric_name("Sentence. Case"));
    }

    #[test]
    fn doc_matching_rules() {
        let doc = documented_names(
            "| `wal.sync_latency` | histogram | and `pool.shard.<i>.hits` plus `server.op.<label>.*` |",
        );
        assert!(name_documented("wal.sync_latency.mean", &doc));
        assert!(name_documented("wal.sync_latency.p99", &doc));
        assert!(!name_documented("wal.sync_latency.surprise", &doc));
        assert!(name_documented("pool.shard.{}.hits", &doc));
        assert!(!name_documented("pool.shard.{}.misses", &doc));
        assert!(name_documented("server.op.{label}.count", &doc));
        assert!(!name_documented("client.op.{label}.count", &doc));
    }

    #[test]
    fn op_consts_split_by_value() {
        let f = LexedFile::lex(
            "mod op { pub const PING: u8 = 0x01; pub const R_PONG: u8 = 0x81; pub const R_ERR: u8 = 0xFF; }",
        );
        let (req, resp) = op_consts(&f);
        assert_eq!(req, vec!["PING"]);
        assert_eq!(resp, vec!["R_PONG", "R_ERR"]);
    }

    #[test]
    fn enum_variants_ignore_field_idents() {
        let f = LexedFile::lex(
            "pub enum Request { Ping, LoadPtdf { text: String }, Query(QuerySpec), Shutdown }",
        );
        let v = enum_variants(&f, "Request");
        assert_eq!(v, vec!["Ping", "LoadPtdf", "Query", "Shutdown"]);
    }

    #[test]
    fn op_labels_array_is_harvested() {
        let f = LexedFile::lex("pub const OP_LABELS: [&str; 2] = [\"ping\", \"query\"];");
        let (labels, line) = op_labels_array(&f);
        assert_eq!(line, 1);
        assert!(labels.contains("ping") && labels.contains("query"));
    }
}
