//! The four check families, plus the infrastructure they share: a
//! lexed-file cache over the workspace and the `ptlint: allow(...)`
//! escape-hatch directives.

pub mod io;
pub mod locks;
pub mod panics;
pub mod protocol;

use crate::findings::{Finding, LintReport, Severity};
use crate::lexer::LexedFile;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// The workspace under analysis: a root directory plus a cache of lexed
/// files so checks that share inputs (panic-freedom and lock-order both
/// read `buffer.rs`) lex each file once.
pub struct Workspace {
    root: PathBuf,
    cache: RefCell<BTreeMap<String, Rc<LexedFile>>>,
}

impl Workspace {
    /// A workspace rooted at `root`.
    pub fn new(root: &Path) -> Workspace {
        Workspace {
            root: root.to_path_buf(),
            cache: RefCell::new(BTreeMap::new()),
        }
    }

    /// Read a workspace-relative file as text; `None` if unreadable.
    pub fn read(&self, rel: &str) -> Option<String> {
        std::fs::read_to_string(self.root.join(rel)).ok()
    }

    /// Lex a workspace-relative Rust file, caching the result.
    pub fn lex(&self, rel: &str) -> Option<Rc<LexedFile>> {
        if let Some(f) = self.cache.borrow().get(rel) {
            return Some(Rc::clone(f));
        }
        let text = self.read(rel)?;
        let lexed = Rc::new(LexedFile::lex(&text));
        self.cache
            .borrow_mut()
            .insert(rel.to_string(), Rc::clone(&lexed));
        Some(lexed)
    }

    /// Number of distinct files lexed so far (feeds `files_scanned`).
    pub fn files_lexed(&self) -> usize {
        self.cache.borrow().len()
    }

    /// All `.rs` files under a workspace-relative directory, recursive,
    /// as sorted workspace-relative paths. Missing directories yield an
    /// empty list (the caller decides whether that is an error).
    pub fn rust_sources(&self, rel_dir: &str) -> Vec<String> {
        let mut out = Vec::new();
        collect_rs(&self.root.join(rel_dir), rel_dir, &mut out);
        out.sort();
        out
    }
}

fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let child_rel = format!("{rel}/{name}");
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, &child_rel, out);
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
}

/// One parsed `// ptlint: allow(<family>) -- <reason>` directive.
#[derive(Debug)]
struct AllowDirective {
    line: u32,
    family: String,
    has_reason: bool,
}

/// All allow-directives in one file. A directive suppresses findings of
/// its family on its own line (trailing comment) and on the line
/// directly below it (standalone comment line).
#[derive(Debug, Default)]
pub struct Allows {
    directives: Vec<AllowDirective>,
}

impl Allows {
    /// Extract directives from a lexed file's comments.
    pub fn parse(lexed: &LexedFile) -> Allows {
        let mut directives = Vec::new();
        for (line, text) in &lexed.comments {
            let t = text.trim();
            let Some(rest) = t.strip_prefix("ptlint:") else {
                continue;
            };
            let rest = rest.trim();
            let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
                continue;
            };
            let (family, after) = inner;
            let has_reason = after
                .trim()
                .strip_prefix("--")
                .is_some_and(|r| !r.trim().is_empty());
            directives.push(AllowDirective {
                line: *line,
                family: family.trim().to_string(),
                has_reason,
            });
        }
        Allows { directives }
    }

    /// Does a directive of `family` cover a finding on `line`?
    pub fn permits(&self, family: &str, line: u32) -> bool {
        self.directives
            .iter()
            .any(|d| d.family == family && d.has_reason && (d.line == line || d.line + 1 == line))
    }

    /// Report every directive that lacks the mandatory `-- reason`
    /// suffix. A reason-less allow is itself an error: the escape hatch
    /// exists to carry the justification into the diff.
    pub fn report_unjustified(&self, file: &str, report: &mut LintReport) {
        for d in &self.directives {
            if !d.has_reason {
                report.push(Finding {
                    code: "directive.unjustified-allow",
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: d.line,
                    detail: format!(
                        "`ptlint: allow({})` without a `-- reason`; every exemption must say why",
                        d.family
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_covers_same_and_next_line() {
        let f = LexedFile::lex(
            "// ptlint: allow(io) -- flock needs a real fd\nlet a = 1;\nlet b = 2; // ptlint: allow(panic) -- len checked above\n",
        );
        let allows = Allows::parse(&f);
        assert!(allows.permits("io", 1));
        assert!(allows.permits("io", 2));
        assert!(!allows.permits("io", 3));
        assert!(allows.permits("panic", 3));
        assert!(
            allows.permits("panic", 4),
            "directives cover the next line too"
        );
        assert!(!allows.permits("panic", 5));
    }

    #[test]
    fn reasonless_directive_is_an_error_and_does_not_permit() {
        let f = LexedFile::lex("// ptlint: allow(panic)\nlet a = 1;\n");
        let allows = Allows::parse(&f);
        assert!(!allows.permits("panic", 2));
        let mut report = LintReport::new();
        allows.report_unjustified("x.rs", &mut report);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.findings[0].code, "directive.unjustified-allow");
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let f = LexedFile::lex("// allow(panic) without the prefix\n// ptlint: deny(everything)\n");
        let allows = Allows::parse(&f);
        assert!(allows.directives.is_empty());
    }
}
