//! The `ptlint` binary: run the static-analysis pass and render the
//! report as a table (default) or JSON (`--json`), optionally writing
//! to a file (`--out`) for CI artifact upload.
//!
//! ```text
//! ptlint [--root DIR] [--json] [--out FILE]
//!        [--deny all|io,panics,locks,protocol,directive]
//!        [--lock-order FILE] [--list-edges]
//! ```
//!
//! Exit codes: `0` — no denied errors (warnings never fail the build);
//! `1` — at least one error finding in a denied family; `2` — usage or
//! internal error.

use ptlint::{family, run_all, Options, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ptlint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = Options::default();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut deny: Vec<String> = Vec::new();
    let mut list_edges = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => opts.root = next_value(&mut it, "--root")?.into(),
            "--lock-order" => opts.lock_order = next_value(&mut it, "--lock-order")?,
            "--json" => json = true,
            "--out" => out = Some(next_value(&mut it, "--out")?),
            "--deny" => {
                for f in next_value(&mut it, "--deny")?.split(',') {
                    deny.push(f.trim().to_string());
                }
            }
            "--list-edges" => list_edges = true,
            "--help" | "-h" => {
                println!(
                    "usage: ptlint [--root DIR] [--json] [--out FILE] [--deny all|FAMILIES] [--lock-order FILE] [--list-edges]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    if list_edges {
        let edges = ptlint::list_edges(&opts)?;
        let mut seen = std::collections::BTreeSet::new();
        for e in &edges {
            if seen.insert((e.from.clone(), e.to.clone())) {
                println!(
                    "{} -> {}    # first seen {}:{}",
                    e.from, e.to, e.file, e.line
                );
            }
        }
        return Ok(ExitCode::SUCCESS);
    }

    let report = run_all(&opts);
    let rendered = if json {
        report.to_json()
    } else {
        report.render_table()
    };
    if let Some(path) = out {
        std::fs::write(&path, rendered.as_bytes())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    } else {
        print!("{rendered}");
        if json {
            println!();
        }
    }

    let deny_all = deny.iter().any(|d| d == "all");
    let denied_errors = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .filter(|f| deny_all || deny.iter().any(|d| d == family(f.code)))
        .count();
    Ok(if denied_errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}
