//! The committed lock-order contract (`tools/lock-order.toml`) and the
//! minimal TOML subset it is written in.
//!
//! The file has two tables. `[locks]` names every lock the checker
//! models and anchors it to the field that owns it, so a refactor that
//! moves or renames a lock field fails loudly instead of silently
//! dropping the lock from the model. `[edges]` is the allowlist of
//! permitted acquisition orders, each with a one-line justification —
//! the contract the MVCC work will extend deliberately rather than
//! accidentally.
//!
//! The parser handles exactly the subset the file uses — `[section]`
//! headers, `"key" = "value"` pairs, `#` comments, blank lines — and
//! rejects everything else. A hand-rolled parser is a deliberate
//! trade: ptlint must stay dependency-free so the CI gate builds from
//! a cold cache in seconds.

/// One modelled lock: a short name plus the `file::field` that owns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDef {
    /// Short name used in edges and findings (e.g. `pool.shard`).
    pub name: String,
    /// Workspace-relative file that declares the lock field.
    pub file: String,
    /// The struct field holding the mutex/rwlock.
    pub field: String,
}

/// One permitted acquisition-order edge: `from` may be held while
/// `to` is acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Why the order is what it is (required, shown in `--list-edges`).
    pub reason: String,
}

/// Parsed `tools/lock-order.toml`.
#[derive(Debug, Default, Clone)]
pub struct LockOrderConfig {
    /// All modelled locks.
    pub locks: Vec<LockDef>,
    /// All permitted edges.
    pub edges: Vec<LockEdge>,
}

impl LockOrderConfig {
    /// Parse the lock-order file. Returns a human-readable error (with
    /// a 1-based line number) on any construct outside the subset.
    pub fn parse(text: &str) -> Result<LockOrderConfig, String> {
        let mut cfg = LockOrderConfig::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "locks" && section != "edges" {
                    return Err(format!("line {lineno}: unknown section [{section}]"));
                }
                continue;
            }
            let (key, value) = split_kv(&line)
                .ok_or_else(|| format!("line {lineno}: expected `key = \"value\"`"))?;
            match section.as_str() {
                "locks" => {
                    let (file, field) = value.rsplit_once("::").ok_or_else(|| {
                        format!("line {lineno}: lock value must be `file::field`")
                    })?;
                    cfg.locks.push(LockDef {
                        name: key,
                        file: file.to_string(),
                        field: field.to_string(),
                    });
                }
                "edges" => {
                    let (from, to) = key
                        .split_once("->")
                        .ok_or_else(|| format!("line {lineno}: edge key must be `from -> to`"))?;
                    if value.trim().is_empty() {
                        return Err(format!("line {lineno}: edge is missing its reason"));
                    }
                    cfg.edges.push(LockEdge {
                        from: from.trim().to_string(),
                        to: to.trim().to_string(),
                        reason: value,
                    });
                }
                _ => {
                    return Err(format!(
                        "line {lineno}: key outside a [locks]/[edges] section"
                    ))
                }
            }
        }
        for e in &cfg.edges {
            for end in [&e.from, &e.to] {
                if !cfg.locks.iter().any(|l| &l.name == end) {
                    return Err(format!(
                        "edge `{} -> {}` references undefined lock `{end}`",
                        e.from, e.to
                    ));
                }
            }
        }
        Ok(cfg)
    }

    /// Is the edge `from -> to` in the allowlist?
    pub fn allows(&self, from: &str, to: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }
}

/// Drop a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Split `key = "value"` where key may be bare or double-quoted.
fn split_kv(line: &str) -> Option<(String, String)> {
    let (key_part, value_part) = if let Some(rest) = line.strip_prefix('"') {
        let end = rest.find('"')?;
        let key = rest[..end].to_string();
        let after = rest[end + 1..].trim_start();
        (key, after.strip_prefix('=')?.trim_start())
    } else {
        let eq = line.find('=')?;
        (line[..eq].trim().to_string(), line[eq + 1..].trim_start())
    };
    let value = value_part.strip_prefix('"')?.strip_suffix('"')?.to_string();
    Some((key_part, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# The committed contract.
[locks]
"pool.shard" = "crates/store/src/buffer.rs::state"
"wal.inner" = "crates/store/src/wal.rs::inner"

[edges]
"pool.shard -> wal.inner" = "flush takes the WAL under the shard"
"#;

    #[test]
    fn parses_locks_and_edges() {
        let cfg = LockOrderConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.locks.len(), 2);
        assert_eq!(cfg.locks[0].name, "pool.shard");
        assert_eq!(cfg.locks[0].file, "crates/store/src/buffer.rs");
        assert_eq!(cfg.locks[0].field, "state");
        assert!(cfg.allows("pool.shard", "wal.inner"));
        assert!(!cfg.allows("wal.inner", "pool.shard"));
    }

    #[test]
    fn edge_with_undefined_lock_is_rejected() {
        let bad = "[locks]\n\"a\" = \"f.rs::x\"\n[edges]\n\"a -> ghost\" = \"r\"\n";
        let err = LockOrderConfig::parse(bad).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn edge_without_reason_is_rejected() {
        let bad = "[locks]\n\"a\" = \"f.rs::x\"\n\"b\" = \"f.rs::y\"\n[edges]\n\"a -> b\" = \"\"\n";
        let err = LockOrderConfig::parse(bad).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_sections_and_malformed_lines_error_with_line_numbers() {
        assert!(LockOrderConfig::parse("[surprise]\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(LockOrderConfig::parse("[locks]\nnot a pair\n")
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = LockOrderConfig::parse(
            "[locks]\n\"a\" = \"f.rs::x\"\n\"b\" = \"f.rs::y\"\n[edges]\n\"a -> b\" = \"issue #42\" # trailing\n",
        )
        .unwrap();
        assert_eq!(cfg.edges[0].reason, "issue #42");
    }
}
