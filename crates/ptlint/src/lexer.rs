//! A minimal Rust lexer: the token stream every check walks.
//!
//! This is deliberately *not* a full parser. The four ptlint checks need
//! exactly three things a grep cannot provide:
//!
//! 1. **String/comment awareness** — `std::fs` inside a doc comment or a
//!    string literal is not a violation; `unwrap()` inside a test module
//!    is not a hot-path panic. The lexer strips comments and keeps
//!    literals as single tokens, so checks never match inside them.
//! 2. **Token adjacency** — `use std :: fs as xfs` is five tokens no
//!    matter how it is formatted, so import renames cannot slip past the
//!    way they slip past a line-oriented grep.
//! 3. **Brace structure** — `#[cfg(test)]`-gated regions and function
//!    bodies are brace-balanced token ranges, which is all the scoping
//!    the checks need.
//!
//! The lexer handles the full literal syntax that appears in this
//! workspace: nested block comments, raw strings with arbitrary `#`
//! fences, byte/char literals vs. lifetimes, and raw identifiers. It
//! never panics on malformed input; an unterminated literal simply runs
//! to end-of-file (the compiler, not the linter, owns that diagnosis).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fs`, `use`, `unwrap`, ...).
    Ident,
    /// One punctuation character (`.`, `[`, `::` is two tokens).
    Punct,
    /// String literal (`"..."`, `r#"..."#`, `b"..."`); `text` holds the
    /// raw inner bytes without quotes or fences.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), including the tick.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what each kind stores).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.chars().next() == Some(c)
    }
}

/// A lexed source file: tokens plus the line comments (for `ptlint:`
/// directives) and per-token test-region classification.
#[derive(Debug)]
pub struct LexedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, text)` for every `//` comment, text excluding the slashes.
    pub comments: Vec<(u32, String)>,
    /// Parallel to `tokens`: true when the token sits inside a
    /// `#[cfg(test)]` / `#[test]`-gated item.
    pub in_test: Vec<bool>,
}

impl LexedFile {
    /// Lex `src` and classify test regions.
    pub fn lex(src: &str) -> LexedFile {
        let (tokens, comments) = tokenize(src);
        let in_test = mark_test_regions(&tokens);
        LexedFile {
            tokens,
            comments,
            in_test,
        }
    }

    /// The token index range `[open+1, close)` for the brace block whose
    /// opening `{` is at `open`; `close` points at the matching `}` (or
    /// `tokens.len()` when unbalanced).
    pub fn brace_span(&self, open: usize) -> (usize, usize) {
        debug_assert!(self.tokens[open].is_punct('{'));
        let mut depth = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return (open + 1, i);
                }
            }
        }
        (open + 1, self.tokens.len())
    }
}

fn tokenize(src: &str) -> (Vec<Token>, Vec<(u32, String)>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push((line, src[start..i].to_string()));
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let tl = line;
                let (inner, ni, nl) = scan_string(src, i, line);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: inner,
                    line: tl,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Char literal vs lifetime. A lifetime is `'` + ident not
                // closed by another `'`.
                let tl = line;
                if let Some((text, ni, nl)) = scan_char(src, i, line) {
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text,
                        line: tl,
                    });
                    i = ni;
                    line = nl;
                } else {
                    let start = i + 1;
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: format!("'{}", &src[start..i]),
                        line: tl,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_char(bytes[i])
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                            && !src[start..i].contains('.')))
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                // Raw strings / byte strings start with an ident-looking
                // prefix: r", r#", br", b", b'.
                if let Some((inner, ni, nl)) = scan_raw_or_byte(src, i, line) {
                    let tl = line;
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: inner,
                        line: tl,
                    });
                    i = ni;
                    line = nl;
                    continue;
                }
                if c == 'b' && bytes.get(i + 1) == Some(&b'\'') {
                    let tl = line;
                    if let Some((text, ni, nl)) = scan_char(src, i + 1, line) {
                        tokens.push(Token {
                            kind: TokenKind::Char,
                            text,
                            line: tl,
                        });
                        i = ni;
                        line = nl;
                        continue;
                    }
                }
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let mut text = &src[start..i];
                // Raw identifier `r#ident`: keep the bare name.
                if text == "r" && bytes.get(i) == Some(&b'#') && {
                    bytes.get(i + 1).is_some_and(|b| is_ident_char(*b))
                } {
                    let rstart = i + 1;
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    text = &src[rstart..i];
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: text.to_string(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    (tokens, comments)
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan a plain `"..."` string starting at the opening quote. Returns
/// (inner text, index past the closing quote, updated line).
fn scan_string(src: &str, start: usize, mut line: u32) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    let inner_start = i;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'"' => {
                return (src[inner_start..i].to_string(), i + 1, line);
            }
            _ => i += 1,
        }
    }
    (src[inner_start..i.min(src.len())].to_string(), i, line)
}

/// Try to scan a char/byte literal at the opening `'`. Returns `None`
/// when the tick starts a lifetime instead.
fn scan_char(src: &str, start: usize, line: u32) -> Option<(String, usize, u32)> {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'\\' {
        i += 2;
        // Escapes may be multi-byte (\u{..}, \x41).
        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
    } else {
        // One UTF-8 character.
        let ch = src[i..].chars().next()?;
        i += ch.len_utf8();
    }
    if bytes.get(i) == Some(&b'\'') {
        Some((src[start + 1..i].to_string(), i + 1, line))
    } else {
        None
    }
}

/// Try to scan `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at the
/// prefix. Returns `None` when the text is an ordinary identifier.
fn scan_raw_or_byte(src: &str, start: usize, mut line: u32) -> Option<(String, usize, u32)> {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    if i == start {
        return None;
    }
    let mut fence = 0usize;
    while raw && bytes.get(i) == Some(&b'#') {
        fence += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    if !raw {
        let (inner, ni, nl) = scan_string(src, i, line);
        return Some((inner, ni, nl));
    }
    i += 1;
    let inner_start = i;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
        } else if bytes[i] == b'"'
            && src.as_bytes()[i + 1..]
                .iter()
                .take(fence)
                .all(|b| *b == b'#')
        {
            let inner = src[inner_start..i].to_string();
            return Some((inner, i + 1 + fence, line));
        } else {
            i += 1;
        }
    }
    Some((src[inner_start..].to_string(), i, line))
}

/// Mark every token inside a `#[cfg(test)]` / `#[test]` item as test
/// code. The gated item is the attribute's following item: its body is
/// the next brace block (or the range up to `;` for body-less items).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_start, attr_end) = bracket_span(tokens, i + 1);
            if attr_is_test(&tokens[attr_start..attr_end]) {
                // Skip over any further attributes between this one and
                // the item they decorate.
                let mut j = attr_end + 1; // token after `]`
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = bracket_span(tokens, j + 1).1 + 1;
                }
                // The item body: the first `{` before a top-level `;`.
                let mut depth_paren = 0i32;
                while j < tokens.len() {
                    let t = &tokens[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth_paren += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth_paren -= 1;
                    } else if t.is_punct(';') && depth_paren == 0 {
                        break; // body-less item (e.g. a use decl)
                    } else if t.is_punct('{') && depth_paren == 0 {
                        let mut depth = 0usize;
                        while j < tokens.len() {
                            if tokens[j].is_punct('{') {
                                depth += 1;
                            } else if tokens[j].is_punct('}') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            in_test[j] = true;
                            j += 1;
                        }
                        if j < tokens.len() {
                            in_test[j] = true; // closing brace
                        }
                        break;
                    }
                    in_test[j] = true;
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Token index range `(open+1, close)` for the bracket block opening at
/// `open` (`[`), where `close` is the matching `]`.
fn bracket_span(tokens: &[Token], open: usize) -> (usize, usize) {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (open + 1, i);
            }
        }
    }
    (open + 1, tokens.len())
}

/// Does an attribute token slice (`cfg ( test )`, `test`,
/// `cfg ( all ( test , … ) )`) gate test-only code?
fn attr_is_test(attr: &[Token]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_produce_code_tokens() {
        let f =
            LexedFile::lex("// std::fs in a comment\nlet s = \"std::fs::read\"; /* std::fs */\n");
        let fs_idents = f.tokens.iter().filter(|t| t.is_ident("fs")).count();
        assert_eq!(fs_idents, 0);
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].1.contains("std::fs"));
        // The string literal is one Str token holding the inner text.
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "std::fs::read"));
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let f = LexedFile::lex(
            "fn f<'a>(x: &'a str) -> char { let _r = r#\"raw \"quoted\" text\"#; 'q' }",
        );
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "raw \"quoted\" text"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "q"));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let f = LexedFile::lex("/* a /* nested */ still comment */ fn g() {}");
        assert!(f.tokens.first().is_some_and(|t| t.is_ident("fn")));
    }

    #[test]
    fn cfg_test_region_marks_the_following_block() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let f = LexedFile::lex(src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, in_test)| *in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_attribute_marks_one_function() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn hot() { b.unwrap(); }\n";
        let f = LexedFile::lex(src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, in_test)| *in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn multiline_string_advances_line_numbers() {
        let f = LexedFile::lex("let a = \"x\ny\";\nlet b = 1;");
        let b = f.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn byte_char_literal_is_not_a_lifetime() {
        let f = LexedFile::lex("let x = b'\\n'; let y: &'static str = \"s\";");
        assert!(f.tokens.iter().any(|t| t.kind == TokenKind::Char));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }
}
