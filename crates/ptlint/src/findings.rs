//! Typed findings and the report they roll up into.
//!
//! Mirrors the fsck reporting contract from `perftrack-store`
//! (`check::Finding` / `check::FsckReport`): stable machine-readable
//! codes, error/warning severities, a capped findings list, a JSON
//! document for CI artifacts, and an aligned human table. The schemas
//! differ only in coordinates — fsck findings point at pages, lint
//! findings point at `file:line`.

use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/consistency issue; never fails the build.
    Warning,
    /// Invariant violation; fails the build when its family is denied.
    Error,
}

/// One static-analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable machine-readable code, `family.kind`
    /// (e.g. `io.direct-fs`, `locks.cycle`).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line, or 0 when the finding has no single line (e.g. a
    /// missing dispatch arm is about an absence).
    pub line: u32,
    /// What the rule saw, in one line.
    pub detail: String,
}

/// Everything one `ptlint` run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned across all checks (deduplicated).
    pub files_scanned: usize,
    /// All findings, in discovery order (sorted before rendering).
    pub findings: Vec<Finding>,
}

/// At most this many findings are kept per code; the rest only bump the
/// counters. Same guardrail as fsck's `FINDINGS_CAP_PER_CODE`.
pub const FINDINGS_CAP_PER_CODE: usize = 50;

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Record a finding, enforcing the per-code cap.
    pub fn push(&mut self, f: Finding) {
        let same_code = self.findings.iter().filter(|x| x.code == f.code).count();
        if same_code < FINDINGS_CAP_PER_CODE {
            self.findings.push(f);
        } else if same_code == FINDINGS_CAP_PER_CODE {
            self.findings.push(Finding {
                detail: format!(
                    "further `{}` findings suppressed (cap {})",
                    f.code, FINDINGS_CAP_PER_CODE
                ),
                ..f
            });
        }
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Sort findings into the canonical render order:
    /// (file, line, code). Both renderers call this, so `--json` and
    /// `--table` are deterministic byte-for-byte.
    fn sorted(&self) -> Vec<&Finding> {
        let mut v: Vec<&Finding> = self.findings.iter().collect();
        v.sort_by(|a, b| (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code)));
        v
    }

    /// The machine-readable report (schema `pt-lint/v1`), uploaded as a
    /// CI artifact. Emitted with sorted keys and sorted findings so two
    /// runs over the same tree are byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"pt-lint/v1\",");
        let _ = write!(out, "\"files_scanned\":{},", self.files_scanned);
        let _ = write!(out, "\"errors\":{},", self.errors());
        let _ = write!(out, "\"warnings\":{},", self.warnings());
        out.push_str("\"findings\":[");
        for (i, f) in self.sorted().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"severity\":\"{}\",\"file\":{},\"line\":{},\"detail\":{}}}",
                json_str(f.code),
                match f.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                },
                json_str(&f.file),
                f.line,
                json_str(&f.detail),
            );
        }
        out.push_str("]}");
        out
    }

    /// Human-readable table, same shape as `pt fsck`'s:
    /// a summary line, a scanned line, then one aligned row per finding.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ptlint: {} error(s), {} warning(s)",
            self.errors(),
            self.warnings()
        );
        let _ = writeln!(out, "  files={}", self.files_scanned);
        for f in self.sorted() {
            let sev = match f.severity {
                Severity::Error => "E",
                Severity::Warning => "W",
            };
            let loc = if f.line == 0 {
                f.file.clone()
            } else {
                format!("{}:{}", f.file, f.line)
            };
            let _ = writeln!(out, "  [{sev}] {:<24} {:<40} {}", f.code, loc, f.detail);
        }
        out
    }
}

/// JSON-escape a string, with quotes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(code: &'static str, file: &str, line: u32, sev: Severity) -> Finding {
        Finding {
            code,
            severity: sev,
            file: file.into(),
            line,
            detail: "d".into(),
        }
    }

    #[test]
    fn counters_and_severities() {
        let mut r = LintReport::new();
        r.push(f("io.direct-fs", "a.rs", 3, Severity::Error));
        r.push(f("locks.unused-edge", "b.rs", 0, Severity::Warning));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn render_order_is_file_line_code() {
        let mut r = LintReport::new();
        r.push(f("z.late", "b.rs", 1, Severity::Error));
        r.push(f("a.early", "a.rs", 9, Severity::Error));
        r.push(f("a.early", "a.rs", 2, Severity::Error));
        let table = r.render_table();
        let rows: Vec<&str> = table.lines().skip(2).collect();
        assert!(rows[0].contains("a.rs:2"));
        assert!(rows[1].contains("a.rs:9"));
        assert!(rows[2].contains("b.rs:1"));
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = LintReport::new();
        r.files_scanned = 2;
        r.push(Finding {
            code: "io.direct-fs",
            severity: Severity::Error,
            file: "a.rs".into(),
            line: 1,
            detail: "uses \"std::fs\"\n".into(),
        });
        let j1 = r.to_json();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"schema\":\"pt-lint/v1\","));
        assert!(j1.contains("\\\"std::fs\\\"\\n"));
    }

    #[test]
    fn per_code_cap_truncates_with_a_marker() {
        let mut r = LintReport::new();
        for i in 0..(FINDINGS_CAP_PER_CODE + 10) {
            r.push(f("panics.unwrap", "x.rs", i as u32 + 1, Severity::Error));
        }
        let count = r
            .findings
            .iter()
            .filter(|x| x.code == "panics.unwrap")
            .count();
        assert_eq!(count, FINDINGS_CAP_PER_CODE + 1);
        assert!(r.findings.last().unwrap().detail.contains("suppressed"));
    }
}
