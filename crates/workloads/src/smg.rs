//! Synthetic SMG2000 benchmark output, optionally with appended PMAPI
//! hardware-counter instrumentation data (the paper's Figure 7 shows
//! exactly this combination from the noise-analysis study, §4.2).
//!
//! The raw SMG2000 stdout carries only ~8 whole-execution values (the
//! paper's SMG-BG/L row of Table 1: 8 performance results per
//! execution); the PMAPI section adds per-process counters (SMG-UV).

use crate::common::{jitter, rng_for, GenFile};
use rand::Rng;

/// Configuration of one synthetic SMG2000 run.
#[derive(Debug, Clone)]
pub struct SmgConfig {
    pub exec_name: String,
    /// Machine tag (`UV`, `BGL`).
    pub machine: String,
    pub np: usize,
    /// Grid size per process.
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Process grid.
    pub px: usize,
    pub py: usize,
    pub pz: usize,
    /// OS-noise factor (the study's subject): multiplies timing jitter.
    /// BG/L was famously quiet (~0.01); large SMP nodes noisy (~0.1).
    pub noise: f64,
    /// Emit the PMAPI per-process counter section.
    pub with_pmapi: bool,
    /// PMAPI counters per process.
    pub pmapi_counters: usize,
    pub seed: u64,
}

impl SmgConfig {
    /// UV-flavoured config (noisy, with PMAPI instrumentation).
    pub fn uv(exec_name: &str, np: usize, seed: u64) -> Self {
        let p = cube_factors(np);
        SmgConfig {
            exec_name: exec_name.to_string(),
            machine: "UV".into(),
            np,
            nx: 40,
            ny: 40,
            nz: 40,
            px: p.0,
            py: p.1,
            pz: p.2,
            noise: 0.10,
            with_pmapi: true,
            pmapi_counters: 8,
            seed,
        }
    }

    /// BG/L-flavoured config (quiet, bare benchmark output).
    pub fn bgl(exec_name: &str, np: usize, seed: u64) -> Self {
        let p = cube_factors(np);
        SmgConfig {
            exec_name: exec_name.to_string(),
            machine: "BGL".into(),
            np,
            nx: 35,
            ny: 35,
            nz: 35,
            px: p.0,
            py: p.1,
            pz: p.2,
            noise: 0.01,
            with_pmapi: false,
            pmapi_counters: 0,
            seed,
        }
    }
}

/// Split `np` into a roughly-cubic process grid.
pub fn cube_factors(np: usize) -> (usize, usize, usize) {
    let mut best = (np, 1, 1);
    let mut best_score = usize::MAX;
    for x in 1..=np {
        if !np.is_multiple_of(x) {
            continue;
        }
        let rem = np / x;
        for y in 1..=rem {
            if !rem.is_multiple_of(y) {
                continue;
            }
            let z = rem / y;
            let score = x.max(y).max(z) - x.min(y).min(z);
            if score < best_score {
                best_score = score;
                best = (x, y, z);
            }
        }
    }
    best
}

/// The eight whole-execution metric names the parser extracts.
pub const SMG_METRICS: [&str; 8] = [
    "SMG Setup wall clock time",
    "SMG Setup cpu clock time",
    "SMG Solve wall clock time",
    "SMG Solve cpu clock time",
    "Iterations",
    "Final Relative Residual Norm",
    "Total wall clock time",
    "Solve MFLOPS",
];

/// PMAPI counter names emitted per process.
pub const PMAPI_COUNTERS: [&str; 8] = [
    "PM_CYC",
    "PM_INST_CMPL",
    "PM_FPU0_CMPL",
    "PM_FPU1_CMPL",
    "PM_LSU_LMQ_SRQ_EMPTY_CYC",
    "PM_LD_MISS_L1",
    "PM_ST_REF_L1",
    "PM_TLB_MISS",
];

/// Generate the SMG2000 stdout (one file; PMAPI appended when enabled).
pub fn generate(cfg: &SmgConfig) -> GenFile {
    let mut rng = rng_for(cfg.seed, &format!("smg:{}", cfg.exec_name));
    let mut out = String::with_capacity(8 * 1024);
    out.push_str("Running with these driver parameters:\n");
    out.push_str(&format!(
        "  (nx, ny, nz)    = ({}, {}, {})\n",
        cfg.nx, cfg.ny, cfg.nz
    ));
    out.push_str(&format!(
        "  (Px, Py, Pz)    = ({}, {}, {})\n",
        cfg.px, cfg.py, cfg.pz
    ));
    out.push_str("  (bx, by, bz)    = (1, 1, 1)\n");
    out.push_str("  (cx, cy, cz)    = (1.0, 1.0, 1.0)\n");
    out.push_str("  (n_pre, n_post) = (1, 1)\n");
    out.push_str("  dim             = 3\n");
    out.push_str("  solver ID       = 0\n");
    out.push_str("=============================================\n");

    // Work model: setup ~ volume, solve ~ volume * iterations, plus the
    // machine's noise factor.
    let volume = (cfg.nx * cfg.ny * cfg.nz) as f64;
    let setup_wall = jitter(&mut rng, volume / 28_000.0, cfg.noise);
    let setup_cpu = setup_wall * jitter(&mut rng, 0.97, 0.02);
    // Iteration count is a property of the problem, not of noise: fixed
    // for a given grid so run-to-run variation reflects the noise factor.
    let iterations = 6 + (volume as u64 % 3) as i32;
    let solve_wall = jitter(&mut rng, volume * iterations as f64 / 38_000.0, cfg.noise);
    let solve_cpu = solve_wall * jitter(&mut rng, 0.97, 0.02);
    let residual = 10f64.powf(-(rng.gen_range(6.0..8.0)));
    let mflops = jitter(&mut rng, 220.0 * cfg.np as f64, cfg.noise);

    out.push_str("SMG Setup:\n");
    out.push_str(&format!("  wall clock time = {setup_wall:.6} seconds\n"));
    out.push_str(&format!("  cpu clock time  = {setup_cpu:.6} seconds\n"));
    out.push_str("=============================================\n");
    out.push_str("SMG Solve:\n");
    out.push_str(&format!("  wall clock time = {solve_wall:.6} seconds\n"));
    out.push_str(&format!("  cpu clock time  = {solve_cpu:.6} seconds\n"));
    out.push_str("=============================================\n");
    out.push_str(&format!("Iterations = {iterations}\n"));
    out.push_str(&format!("Final Relative Residual Norm = {residual:.6e}\n"));
    out.push_str(&format!(
        "Total wall clock time = {:.6} seconds\n",
        setup_wall + solve_wall
    ));
    out.push_str(&format!("Solve MFLOPS = {mflops:.2}\n"));

    if cfg.with_pmapi {
        out.push_str("\n# PMAPI hardware counter data\n");
        for rank in 0..cfg.np {
            out.push_str(&format!("PMAPI process {rank}:\n"));
            for (i, counter) in PMAPI_COUNTERS.iter().take(cfg.pmapi_counters).enumerate() {
                let base = 1.0e9 * (8.0 - i as f64);
                out.push_str(&format!(
                    "  {counter:28}: {:.0}\n",
                    jitter(&mut rng, base, cfg.noise.max(0.05))
                ));
            }
        }
    }
    GenFile {
        name: format!("{}.out", cfg.exec_name),
        content: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_factors_multiply_back() {
        for np in [1, 2, 8, 16, 64, 128, 100] {
            let (x, y, z) = cube_factors(np);
            assert_eq!(x * y * z, np);
        }
        assert_eq!(cube_factors(64), (4, 4, 4));
    }

    #[test]
    fn bgl_output_is_bare_benchmark() {
        let f = generate(&SmgConfig::bgl("smg-bgl-001", 512, 3));
        assert!(f.content.contains("SMG Solve:"));
        assert!(!f.content.contains("PMAPI"), "BG/L preset has no PMAPI");
        // All eight extractable metrics present.
        for needle in [
            "wall clock time",
            "cpu clock time",
            "Iterations =",
            "Final Relative Residual Norm =",
            "Total wall clock time =",
            "Solve MFLOPS =",
        ] {
            assert!(f.content.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn uv_output_has_per_process_counters() {
        let cfg = SmgConfig::uv("smg-uv-001", 16, 5);
        let f = generate(&cfg);
        assert!(f.content.contains("PMAPI process 15:"));
        let counter_lines = f
            .content
            .lines()
            .filter(|l| l.trim_start().starts_with("PM_"))
            .count();
        assert_eq!(counter_lines, 16 * 8);
    }

    #[test]
    fn deterministic_and_noise_sensitive() {
        let a = generate(&SmgConfig::uv("e", 8, 11));
        let b = generate(&SmgConfig::uv("e", 8, 11));
        assert_eq!(a, b);
        // BG/L (quiet) runs vary less across seeds than UV (noisy) runs.
        let solve = |machine: fn(&str, usize, u64) -> SmgConfig, seed: u64| -> f64 {
            let f = generate(&machine("e", 8, seed));
            f.content
                .lines()
                .skip_while(|l| !l.starts_with("SMG Solve"))
                .find(|l| l.contains("wall clock"))
                .and_then(|l| l.split('=').nth(1))
                .and_then(|s| s.trim().strip_suffix(" seconds"))
                .unwrap()
                .parse()
                .unwrap()
        };
        let spread = |machine: fn(&str, usize, u64) -> SmgConfig| -> f64 {
            let vals: Vec<f64> = (0..20).map(|s| solve(machine, s)).collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(0.0f64, f64::max);
            (max - min) / min
        };
        assert!(
            spread(SmgConfig::bgl) < spread(SmgConfig::uv),
            "noise model must separate the platforms"
        );
    }
}
