//! Shared helpers for the workload generators: deterministic RNG plumbing
//! and the in-memory generated-file representation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated file: name plus full text content. Generators return these
/// in memory; [`write_files`] puts them on disk for CLI use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenFile {
    pub name: String,
    pub content: String,
}

impl GenFile {
    /// Byte length of the content (Table 1's "Raw Data" column).
    pub fn len(&self) -> usize {
        self.content.len()
    }

    /// True when the content is empty.
    pub fn is_empty(&self) -> bool {
        self.content.is_empty()
    }
}

/// Write generated files under `dir`, creating it if needed.
pub fn write_files(dir: &std::path::Path, files: &[GenFile]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for f in files {
        std::fs::write(dir.join(&f.name), &f.content)?;
    }
    Ok(())
}

/// Deterministic RNG derived from a seed and a stream label, so different
/// generators sharing one seed do not correlate.
pub fn rng_for(seed: u64, stream: &str) -> StdRng {
    let mut h = 1469598103934665603u64; // FNV-1a
    for b in stream.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(1099511628211);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// A positive value with multiplicative jitter: `base * (1 ± spread)`.
pub fn jitter(rng: &mut StdRng, base: f64, spread: f64) -> f64 {
    let f = 1.0 + rng.gen_range(-spread..spread);
    (base * f).max(1e-9)
}

/// Total bytes across files.
pub fn total_bytes(files: &[GenFile]) -> usize {
    files.iter().map(GenFile::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_stream_separated() {
        let a1: u64 = rng_for(7, "irs").gen();
        let a2: u64 = rng_for(7, "irs").gen();
        let b: u64 = rng_for(7, "smg").gen();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn jitter_stays_positive_and_bounded() {
        let mut rng = rng_for(1, "jitter");
        for _ in 0..1000 {
            let v = jitter(&mut rng, 10.0, 0.3);
            assert!(v > 6.9 && v < 13.1, "{v}");
        }
    }

    #[test]
    fn write_files_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ptwl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let files = vec![GenFile {
            name: "a.txt".into(),
            content: "hello".into(),
        }];
        write_files(&dir, &files).unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("a.txt")).unwrap(), "hello");
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(total_bytes(&files), 5);
    }
}
