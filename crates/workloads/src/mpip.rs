//! Synthetic mpiP profile reports (the paper's Figure 8).
//!
//! mpiP breaks MPI time down by callsite — an (MPI function, calling
//! function, source location) triple — and reports per-rank and aggregate
//! statistics. The caller/callee pairs in this data are what drove the
//! paper's §4.2 extension to multiple resource sets per performance
//! result.

use crate::common::{jitter, rng_for, GenFile};
use rand::Rng;

/// Configuration of a synthetic mpiP report.
#[derive(Debug, Clone)]
pub struct MpipConfig {
    pub exec_name: String,
    pub np: usize,
    /// Number of distinct callsites.
    pub callsites: usize,
    /// Ranks reported per callsite (mpiP reports all, but the `*`
    /// aggregate plus a subset keeps files realistic at scale).
    pub ranks_per_callsite: usize,
    pub seed: u64,
}

impl MpipConfig {
    /// A paper-shaped config.
    pub fn new(exec_name: &str, np: usize, seed: u64) -> Self {
        MpipConfig {
            exec_name: exec_name.to_string(),
            np,
            callsites: 30,
            ranks_per_callsite: np.min(48),
            seed,
        }
    }
}

/// MPI functions that appear in callsites.
pub const MPI_CALLS: [&str; 10] = [
    "Waitall",
    "Isend",
    "Irecv",
    "Allreduce",
    "Barrier",
    "Bcast",
    "Reduce",
    "Wait",
    "Send",
    "Recv",
];

/// SMG-ish caller functions.
pub const CALLERS: [&str; 8] = [
    "hypre_SMGSolve",
    "hypre_SMGRelax",
    "hypre_SMGResidual",
    "hypre_StructInnerProd",
    "hypre_SemiRestrict",
    "hypre_SemiInterp",
    "hypre_StructMatvec",
    "main",
];

/// Source files for callsites.
const FILES: [&str; 6] = [
    "smg_solve.c",
    "smg_relax.c",
    "smg_residual.c",
    "struct_innerprod.c",
    "semi_restrict.c",
    "struct_matvec.c",
];

/// Generate one mpiP report file.
pub fn generate(cfg: &MpipConfig) -> GenFile {
    let mut rng = rng_for(cfg.seed, &format!("mpip:{}", cfg.exec_name));
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("@ mpiP\n");
    out.push_str(&format!(
        "@ Command : ./smg2000 -n 40 40 40 ({})\n",
        cfg.exec_name
    ));
    out.push_str("@ Version : 2.8.2\n");
    out.push_str(&format!("@ MPI Task Assignment : {} tasks\n", cfg.np));
    out.push('\n');

    // Per-task app/MPI time.
    let app_time_per_task = jitter(&mut rng, 30.0, 0.1);
    let mpi_fraction = rng.gen_range(0.12..0.30);
    out.push_str("@--- MPI Time (seconds) ---\n");
    out.push_str("Task    AppTime    MPITime     MPI%\n");
    let mut total_app = 0.0;
    let mut total_mpi = 0.0;
    for task in 0..cfg.np.min(cfg.ranks_per_callsite) {
        let app = jitter(&mut rng, app_time_per_task, 0.05);
        let mpi = app * jitter(&mut rng, mpi_fraction, 0.2);
        total_app += app;
        total_mpi += mpi;
        out.push_str(&format!(
            "{task:>4} {app:>10.4} {mpi:>10.4} {:>8.2}\n",
            100.0 * mpi / app
        ));
    }
    out.push_str(&format!(
        "   * {total_app:>10.4} {total_mpi:>10.4} {:>8.2}\n\n",
        100.0 * total_mpi / total_app
    ));

    // Callsite table: id → (file, line, caller, MPI call).
    out.push_str(&format!("@--- Callsites: {} ---\n", cfg.callsites));
    out.push_str(" ID Lev File/Address        Line Parent_Funct             MPI_Call\n");
    let mut sites = Vec::with_capacity(cfg.callsites);
    for id in 1..=cfg.callsites {
        let file = FILES[rng.gen_range(0..FILES.len())];
        let line = rng.gen_range(40..900);
        let caller = CALLERS[rng.gen_range(0..CALLERS.len())];
        let call = MPI_CALLS[rng.gen_range(0..MPI_CALLS.len())];
        out.push_str(&format!(
            "{id:>3}   0 {file:<18} {line:>4} {caller:<24} {call}\n"
        ));
        sites.push((id, file, line, caller, call));
    }
    out.push('\n');

    // Callsite time statistics: per rank plus the `*` aggregate.
    out.push_str(&format!(
        "@--- Callsite Time statistics (all, milliseconds): {} ---\n",
        cfg.callsites * (cfg.ranks_per_callsite + 1)
    ));
    out.push_str("Name              Site Rank  Count      Max     Mean      Min\n");
    for (id, _, _, _, call) in &sites {
        let mean = jitter(&mut rng, 5.0, 0.9);
        let mut agg_count = 0u64;
        for r in 0..cfg.ranks_per_callsite {
            let count = rng.gen_range(100..20_000);
            agg_count += count;
            let m = jitter(&mut rng, mean, 0.3);
            out.push_str(&format!(
                "{call:<16} {id:>4} {r:>4} {count:>6} {:>8.3} {m:>8.3} {:>8.4}\n",
                m * jitter(&mut rng, 4.0, 0.5),
                m * jitter(&mut rng, 0.1, 0.5)
            ));
        }
        out.push_str(&format!(
            "{call:<16} {id:>4}    * {agg_count:>6} {:>8.3} {mean:>8.3} {:>8.4}\n",
            mean * 5.0,
            mean * 0.05
        ));
    }
    // Aggregate sent message sizes for the point-to-point/collective
    // sends among the callsites.
    out.push('\n');
    out.push_str("@--- Aggregate Sent Message Size (top twenty, descending, bytes) ---\n");
    out.push_str("Call                 Site      Count      Total       Avrg  Sent%\n");
    let senders: Vec<_> = sites
        .iter()
        .filter(|(_, _, _, _, call)| {
            ["Isend", "Send", "Bcast", "Allreduce", "Reduce"].contains(call)
        })
        .take(20)
        .collect();
    for (id, _, _, _, call) in &senders {
        let count = rng.gen_range(1_000..500_000) as f64;
        let avg = jitter(&mut rng, 8.0e3, 0.9);
        out.push_str(&format!(
            "{call:<16} {id:>8} {count:>10.0} {:>10.3e} {avg:>10.3e} {:>6.2}\n",
            count * avg,
            jitter(&mut rng, 100.0 / senders.len().max(1) as f64, 0.5)
        ));
    }
    GenFile {
        name: format!("{}.mpiP", cfg.exec_name),
        content: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_structure() {
        let f = generate(&MpipConfig::new("smg-uv-007", 32, 9));
        let rpc = 32; // ranks_per_callsite = min(np, 48)
        assert!(f.content.starts_with("@ mpiP"));
        assert!(f.content.contains("@--- MPI Time (seconds) ---"));
        assert!(f.content.contains("@--- Callsites: 30 ---"));
        assert!(f.content.contains("@--- Callsite Time statistics"));
        // 30 callsites × (ranks + aggregate).
        let stat_lines = f
            .content
            .lines()
            .skip_while(|l| !l.starts_with("@--- Callsite Time"))
            .skip(2)
            .take_while(|l| !l.is_empty())
            .count();
        assert_eq!(stat_lines, 30 * (rpc + 1));
    }

    #[test]
    fn message_size_section_present_when_senders_exist() {
        // With 30 random callsites, send-ish calls are essentially certain.
        let f = generate(&MpipConfig::new("e", 16, 4));
        assert!(f.content.contains("@--- Aggregate Sent Message Size"));
        let rows = f
            .content
            .lines()
            .skip_while(|l| !l.starts_with("@--- Aggregate Sent"))
            .skip(2)
            .take_while(|l| !l.is_empty())
            .count();
        assert!(rows > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(&MpipConfig::new("e", 8, 1));
        let b = generate(&MpipConfig::new("e", 8, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn callsite_ids_are_consistent_between_tables() {
        let f = generate(&MpipConfig::new("e", 8, 2));
        // Every site id in the stats table appears in the callsite table.
        let mut site_ids = std::collections::HashSet::new();
        let mut in_sites = false;
        for l in f.content.lines() {
            if l.starts_with("@--- Callsites") {
                in_sites = true;
                continue;
            }
            if in_sites {
                if l.is_empty() {
                    break;
                }
                if let Some(id) = l
                    .split_whitespace()
                    .next()
                    .and_then(|t| t.parse::<u32>().ok())
                {
                    site_ids.insert(id);
                }
            }
        }
        assert_eq!(site_ids.len(), 30);
        let mut in_stats = false;
        for l in f.content.lines() {
            if l.starts_with("@--- Callsite Time") {
                in_stats = true;
                continue;
            }
            if in_stats {
                if l.is_empty() {
                    break; // end of the stats table
                }
                if l.starts_with("Name") {
                    continue;
                }
                let id: u32 = l.split_whitespace().nth(1).unwrap().parse().unwrap();
                assert!(site_ids.contains(&id), "unknown site {id}");
            }
        }
    }
}
