//! # perftrack-workloads
//!
//! Deterministic synthetic workload generators standing in for the LLNL
//! datasets the paper loaded into PerfTrack: IRS benchmark output files
//! (§4.1), SMG2000 stdout with PMAPI hardware-counter data and mpiP
//! profiles (§4.2, Figures 7–8), and Paradyn exports — resources, index,
//! and histogram files with `nan` bins (§4.3).
//!
//! Each generator is a pure function of its config (seeded RNG), so
//! adapters' golden tests, the Table 1 harness, and the benches all see
//! identical bytes across runs. The [`presets`] module sizes the datasets
//! to the paper's Table 1 (files per execution, bytes, result counts).

pub mod common;
pub mod irs;
pub mod mpip;
pub mod paradyn;
pub mod presets;
pub mod smg;

pub use common::{total_bytes, write_files, GenFile};
pub use presets::{
    irs_purple, irs_scaling_sweep, paradyn_irs, smg_bgl, smg_uv, ExecutionBundle, ParadynBundle,
};
