//! Synthetic IRS (Implicit Radiation Solver) benchmark output.
//!
//! The ASC Purple IRS benchmark (§4.1) writes several data files per run;
//! timings cover ~80 functions, and for each function five metrics are
//! reported as aggregate/average/max/min over all processes — with some
//! values occasionally not applicable, yielding "slightly varying numbers
//! of performance results" (~1,500) per execution. This generator
//! reproduces that file shape deterministically from a seed, with a
//! load-imbalance model so the paper's Figure 5 (min/max function time vs
//! process count) has its characteristic spread.

use crate::common::{jitter, rng_for, GenFile};
use rand::Rng;

/// Configuration of one synthetic IRS execution.
#[derive(Debug, Clone)]
pub struct IrsConfig {
    /// Execution name, e.g. `irs-mcr-0008`.
    pub exec_name: String,
    /// Machine tag recorded in the run header (`MCR`, `Frost`).
    pub machine: String,
    /// MPI process count.
    pub np: usize,
    /// OpenMP threads per process.
    pub threads: usize,
    /// Number of timed functions (the paper's ~80).
    pub functions: usize,
    /// Relative max/min spread across processes (load imbalance).
    pub imbalance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl IrsConfig {
    /// A paper-shaped config: 80 functions, 15% imbalance.
    pub fn new(exec_name: &str, machine: &str, np: usize, seed: u64) -> Self {
        IrsConfig {
            exec_name: exec_name.to_string(),
            machine: machine.to_string(),
            np,
            threads: 1,
            functions: 80,
            imbalance: 0.15,
            seed,
        }
    }
}

/// The five per-function metrics IRS reports.
pub const IRS_METRICS: [&str; 5] = ["CPU_time", "wall_time", "MPI_time", "cache_misses", "flops"];

/// Well-known IRS function names; the remainder are generated.
const KNOWN_FUNCTIONS: [&str; 12] = [
    "rmatmult3",
    "SetupHydro",
    "RadiationSolve",
    "MatrixSolveCG",
    "GlobalSum",
    "ExchangeBoundary",
    "ZoneUpdate",
    "EosLookup",
    "TimeStepControl",
    "WriteDump",
    "ReadInput",
    "DomainDecompose",
];

/// Function names for a run of `n` functions.
pub fn function_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            KNOWN_FUNCTIONS
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("irs_kernel_{i:03}"))
        })
        .collect()
}

/// Generate the six output files of one IRS execution.
pub fn generate(cfg: &IrsConfig) -> Vec<GenFile> {
    let mut rng = rng_for(cfg.seed, &format!("irs:{}", cfg.exec_name));
    let funcs = function_names(cfg.functions);
    // Per-function "work" determines base times; a handful of functions
    // dominate, like a real solver.
    let mut timing = String::with_capacity(64 * 1024);
    timing.push_str("# IRS timing summary\n");
    timing.push_str(&format!(
        "# execution: {}  machine: {}  np: {}  threads: {}\n",
        cfg.exec_name, cfg.machine, cfg.np, cfg.threads
    ));
    timing.push_str("# function metric aggregate average max min\n");
    for (fi, f) in funcs.iter().enumerate() {
        let weight = match fi {
            0..=4 => 40.0 / (fi + 1) as f64, // dominant kernels
            _ => jitter(&mut rng, 1.5, 0.8),
        };
        for metric in IRS_METRICS {
            // Average per-process value: work/np for time-like metrics,
            // flat for counter-like. I/O and timestep control are serial
            // (they do not speed up with more processes), giving the
            // application a realistic Amdahl serial fraction.
            let serial_fn = matches!(fi, 8..=10); // TimeStepControl, WriteDump, ReadInput
            let per_proc = match metric {
                "cache_misses" => weight * 1.0e6,
                "flops" => weight * 5.0e7 / cfg.np as f64,
                _ if serial_fn => weight * 0.2,
                _ => weight / cfg.np as f64,
            };
            let avg = jitter(&mut rng, per_proc, 0.05);
            let spread = cfg.imbalance * jitter(&mut rng, 1.0, 0.4);
            let max = avg * (1.0 + spread);
            let min = (avg * (1.0 - spread)).max(0.0);
            let agg = avg * cfg.np as f64;
            // ~5% of stats are "not applicable" ("-"), as in the paper.
            // Dominant kernels always report, so scaling studies (Fig. 5)
            // have complete series.
            let drop_p = if fi < 5 { 0.0 } else { 0.055 };
            let fmt = |v: f64, rng: &mut rand::rngs::StdRng| {
                if rng.gen_bool(drop_p) {
                    "-".to_string()
                } else {
                    format!("{v:.6}")
                }
            };
            let line = format!(
                "{f} {metric} {} {} {} {}\n",
                fmt(agg, &mut rng),
                fmt(avg, &mut rng),
                fmt(max, &mut rng),
                fmt(min, &mut rng)
            );
            timing.push_str(&line);
        }
    }

    let mut run_info = String::new();
    run_info.push_str(&format!("execution: {}\n", cfg.exec_name));
    run_info.push_str("application: IRS\n");
    run_info.push_str(&format!("machine: {}\n", cfg.machine));
    run_info.push_str(&format!("processes: {}\n", cfg.np));
    run_info.push_str(&format!("threads_per_process: {}\n", cfg.threads));
    run_info.push_str(&format!(
        "concurrency_model: {}\n",
        match (cfg.np > 1, cfg.threads > 1) {
            (true, true) => "MPI+OpenMP",
            (true, false) => "MPI",
            (false, true) => "OpenMP",
            (false, false) => "sequential",
        }
    ));
    run_info.push_str(&format!("input_deck: zrad.{}\n", cfg.np));

    let mut mem = String::from("# rank high_water_MB\n");
    for rank in 0..cfg.np {
        mem.push_str(&format!("{rank} {:.2}\n", jitter(&mut rng, 180.0, 0.2)));
    }

    let mut io = String::from("# phase bytes seconds\n");
    for phase in ["read_input", "write_dump", "write_restart"] {
        io.push_str(&format!(
            "{phase} {} {:.4}\n",
            rng.gen_range(1_000_000..50_000_000),
            jitter(&mut rng, 2.0, 0.5)
        ));
    }

    let mut residual = String::from("# iteration residual\n");
    let mut r = 1.0f64;
    for it in 0..25 {
        r *= rng.gen_range(0.3..0.7);
        residual.push_str(&format!("{it} {r:.6e}\n"));
    }

    let mut counters = String::from("# counter value\n");
    for (name, base) in [
        ("PM_CYC", 2.0e11),
        ("PM_INST_CMPL", 1.5e11),
        ("PM_FPU_FMA", 3.0e10),
        ("PM_LD_MISS_L1", 8.0e8),
        ("PM_ST_MISS_L1", 4.0e8),
        ("PM_TLB_MISS", 2.0e7),
        ("PM_BR_MPRED", 6.0e8),
        ("PM_DATA_FROM_MEM", 3.0e8),
    ] {
        counters.push_str(&format!("{name} {:.0}\n", jitter(&mut rng, base, 0.3)));
    }

    vec![
        GenFile {
            name: format!("{}.timing.dat", cfg.exec_name),
            content: timing,
        },
        GenFile {
            name: format!("{}.run_info.txt", cfg.exec_name),
            content: run_info,
        },
        GenFile {
            name: format!("{}.mem.dat", cfg.exec_name),
            content: mem,
        },
        GenFile {
            name: format!("{}.io.dat", cfg.exec_name),
            content: io,
        },
        GenFile {
            name: format!("{}.residual.dat", cfg.exec_name),
            content: residual,
        },
        GenFile {
            name: format!("{}.counters.dat", cfg.exec_name),
            content: counters,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_six_files_deterministically() {
        let cfg = IrsConfig::new("irs-mcr-0008", "MCR", 8, 42);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), 6);
        assert_eq!(a, b, "same seed, same bytes");
        let other = generate(&IrsConfig::new("irs-mcr-0008", "MCR", 8, 43));
        assert_ne!(a, other, "different seed differs");
    }

    #[test]
    fn timing_file_has_expected_shape() {
        let cfg = IrsConfig::new("e", "Frost", 16, 7);
        let files = generate(&cfg);
        let timing = &files[0].content;
        let data_lines: Vec<&str> = timing
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();
        assert_eq!(data_lines.len(), 80 * 5);
        // Stat values: max >= avg >= min when all three present.
        let mut checked = 0;
        for l in &data_lines {
            let parts: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(parts.len(), 6);
            if let (Ok(avg), Ok(max), Ok(min)) = (
                parts[3].parse::<f64>(),
                parts[4].parse::<f64>(),
                parts[5].parse::<f64>(),
            ) {
                assert!(max >= avg && avg >= min, "bad stats in {l}");
                checked += 1;
            }
        }
        assert!(checked > 300, "most lines have all stats");
        // Some stats are n/a.
        assert!(timing.contains(" - "), "occasional missing values");
    }

    #[test]
    fn times_shrink_with_more_processes() {
        // Figure 5's premise: per-process function time drops as np grows.
        let t8 = generate(&IrsConfig::new("a", "M", 8, 9));
        let t64 = generate(&IrsConfig::new("a", "M", 64, 9));
        let avg_of = |files: &[GenFile]| -> f64 {
            files[0]
                .content
                .lines()
                .filter(|l| l.starts_with("rmatmult3 CPU_time"))
                .filter_map(|l| l.split_whitespace().nth(3)?.parse::<f64>().ok())
                .next()
                .unwrap()
        };
        assert!(avg_of(&t8) > 4.0 * avg_of(&t64));
    }

    #[test]
    fn per_process_files_scale_with_np() {
        let files = generate(&IrsConfig::new("e", "M", 32, 1));
        let mem = files.iter().find(|f| f.name.ends_with("mem.dat")).unwrap();
        assert_eq!(
            mem.content.lines().filter(|l| !l.starts_with('#')).count(),
            32
        );
    }

    #[test]
    fn run_info_concurrency_model() {
        let mut cfg = IrsConfig::new("e", "M", 4, 1);
        cfg.threads = 4;
        let files = generate(&cfg);
        assert!(files[1].content.contains("concurrency_model: MPI+OpenMP"));
        cfg.np = 1;
        cfg.threads = 1;
        let files = generate(&cfg);
        assert!(files[1].content.contains("concurrency_model: sequential"));
    }
}
