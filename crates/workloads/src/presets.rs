//! Dataset presets shaped like the paper's Table 1 and §4.3 study data.

use crate::common::GenFile;
use crate::irs::{generate as irs_generate, IrsConfig};
use crate::mpip::{generate as mpip_generate, MpipConfig};
use crate::paradyn::{generate as paradyn_generate, ParadynConfig, ParadynExport};
use crate::smg::{generate as smg_generate, SmgConfig};

/// One execution's raw tool output plus the metadata adapters need.
#[derive(Debug, Clone)]
pub struct ExecutionBundle {
    pub exec_name: String,
    pub application: String,
    pub machine: String,
    pub np: usize,
    pub files: Vec<GenFile>,
}

/// The IRS Purple-benchmark study (§4.1): runs on MCR (Linux) and Frost
/// (AIX) across process counts. `execs` executions (the paper loaded 62).
pub fn irs_purple(seed: u64, execs: usize) -> Vec<ExecutionBundle> {
    let machines = ["MCR", "Frost"];
    let nps = [8usize, 16, 32, 64];
    (0..execs)
        .map(|i| {
            let machine = machines[i % machines.len()];
            let np = nps[(i / machines.len()) % nps.len()];
            let exec_name = format!("irs-{}-{i:04}", machine.to_lowercase());
            let mut cfg = IrsConfig::new(&exec_name, machine, np, seed.wrapping_add(i as u64));
            // A few hybrid MPI+OpenMP runs, as the benchmark supports.
            if i % 7 == 3 {
                cfg.threads = 4;
            }
            ExecutionBundle {
                exec_name,
                application: "IRS".into(),
                machine: machine.into(),
                np,
                files: irs_generate(&cfg),
            }
        })
        .collect()
}

/// The SMG2000 noise study on UV (§4.2): per execution, the benchmark
/// stdout with PMAPI data plus an mpiP report (2 files). The paper loaded
/// 35 executions.
pub fn smg_uv(seed: u64, execs: usize) -> Vec<ExecutionBundle> {
    (0..execs)
        .map(|i| {
            let exec_name = format!("smg-uv-{i:04}");
            let np = 128;
            let smg = smg_generate(&SmgConfig::uv(&exec_name, np, seed.wrapping_add(i as u64)));
            let mpip = mpip_generate(&MpipConfig::new(
                &exec_name,
                np,
                seed.wrapping_add(i as u64),
            ));
            ExecutionBundle {
                exec_name,
                application: "SMG2000".into(),
                machine: "UV".into(),
                np,
                files: vec![smg, mpip],
            }
        })
        .collect()
}

/// The SMG2000 noise study on BG/L (§4.2): bare benchmark output, one
/// file, eight whole-execution values. The paper loaded 60 executions.
pub fn smg_bgl(seed: u64, execs: usize) -> Vec<ExecutionBundle> {
    (0..execs)
        .map(|i| {
            let exec_name = format!("smg-bgl-{i:04}");
            let np = 1024;
            let smg = smg_generate(&SmgConfig::bgl(&exec_name, np, seed.wrapping_add(i as u64)));
            ExecutionBundle {
                exec_name,
                application: "SMG2000".into(),
                machine: "BGL".into(),
                np,
                files: vec![smg],
            }
        })
        .collect()
}

/// A Paradyn export bundle (§4.3): three IRS executions on MCR at paper
/// scale (~17k resources, ~25k results each) unless `small` is set.
#[derive(Debug, Clone)]
pub struct ParadynBundle {
    pub exec_name: String,
    pub export: ParadynExport,
}

/// The §4.3 Paradyn study.
pub fn paradyn_irs(seed: u64, execs: usize, small: bool) -> Vec<ParadynBundle> {
    (0..execs)
        .map(|i| {
            let exec_name = format!("irs-paradyn-{i:02}");
            let cfg = if small {
                ParadynConfig::small(&exec_name, seed.wrapping_add(i as u64))
            } else {
                ParadynConfig::paper_scale(&exec_name, seed.wrapping_add(i as u64))
            };
            ParadynBundle {
                exec_name,
                export: paradyn_generate(&cfg),
            }
        })
        .collect()
}

/// The IRS study runs a sweep over process counts for the Figure 5
/// load-balance chart: one execution per process count on one machine.
pub fn irs_scaling_sweep(seed: u64, machine: &str, nps: &[usize]) -> Vec<ExecutionBundle> {
    nps.iter()
        .map(|&np| {
            let exec_name = format!("irs-{}-np{np:03}", machine.to_lowercase());
            let cfg = IrsConfig::new(&exec_name, machine, np, seed.wrapping_add(np as u64));
            ExecutionBundle {
                exec_name,
                application: "IRS".into(),
                machine: machine.into(),
                np,
                files: irs_generate(&cfg),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::total_bytes;

    #[test]
    fn irs_preset_shape() {
        let execs = irs_purple(1, 8);
        assert_eq!(execs.len(), 8);
        assert!(execs.iter().any(|e| e.machine == "MCR"));
        assert!(execs.iter().any(|e| e.machine == "Frost"));
        for e in &execs {
            assert_eq!(e.files.len(), 6, "the paper's 6 files per IRS execution");
            // Table 1: ~61 KB raw data per execution.
            let bytes = total_bytes(&e.files);
            assert!(bytes > 20_000 && bytes < 120_000, "bytes {bytes}");
        }
        // Unique execution names.
        let names: std::collections::HashSet<_> = execs.iter().map(|e| &e.exec_name).collect();
        assert_eq!(names.len(), execs.len());
    }

    #[test]
    fn smg_presets_shape() {
        let uv = smg_uv(1, 3);
        for e in &uv {
            assert_eq!(e.files.len(), 2, "stdout + mpiP");
            assert!(e.files[0].content.contains("PMAPI"));
            assert!(e.files[1].content.starts_with("@ mpiP"));
        }
        let bgl = smg_bgl(1, 3);
        for e in &bgl {
            assert_eq!(e.files.len(), 1);
            assert!(!e.files[0].content.contains("PMAPI"));
            // Table 1: ~1 KB raw per BG/L execution.
            assert!(e.files[0].content.len() < 3_000);
        }
    }

    #[test]
    fn paradyn_preset_small() {
        let bundles = paradyn_irs(1, 3, true);
        assert_eq!(bundles.len(), 3);
        // Executions differ (pids, instrumentation timing).
        assert_ne!(
            bundles[0].export.resources.content,
            bundles[1].export.resources.content
        );
    }

    #[test]
    fn scaling_sweep_covers_each_np() {
        let sweep = irs_scaling_sweep(1, "MCR", &[8, 16, 32, 64]);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[2].np, 32);
        assert!(sweep[0].exec_name.contains("np008"));
    }
}
