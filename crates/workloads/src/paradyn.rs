//! Synthetic Paradyn export files (§4.3): a resources file, an index
//! file, and histogram files — one per metric-focus pair, with `nan`
//! entries for bins recorded before dynamic instrumentation was inserted.
//!
//! Because Paradyn inserts instrumentation at different moments in each
//! run, the number of resources, histograms, and non-nan bins varies
//! between executions with the same configuration — the behaviour §4.3
//! reports for its three IRS executions.

use crate::common::{jitter, rng_for, GenFile};
use rand::Rng;

/// Configuration of one Paradyn export.
#[derive(Debug, Clone)]
pub struct ParadynConfig {
    pub exec_name: String,
    /// Machine nodes the run used.
    pub nodes: usize,
    /// Processes per node.
    pub procs_per_node: usize,
    /// Source modules in the Code hierarchy.
    pub modules: usize,
    /// Functions per module.
    pub functions_per_module: usize,
    /// Histogram (metric-focus pair) count.
    pub histograms: usize,
    /// Bins per histogram.
    pub bins: usize,
    pub seed: u64,
}

impl ParadynConfig {
    /// Shaped like the paper's IRS/MCR exports: ~17k resources,
    /// 8 metrics, ~25k performance results per execution.
    pub fn paper_scale(exec_name: &str, seed: u64) -> Self {
        ParadynConfig {
            exec_name: exec_name.to_string(),
            nodes: 16,
            procs_per_node: 2,
            modules: 200,
            functions_per_module: 80,
            histograms: 280,
            bins: 100,
            seed,
        }
    }

    /// A small config for unit tests.
    pub fn small(exec_name: &str, seed: u64) -> Self {
        ParadynConfig {
            exec_name: exec_name.to_string(),
            nodes: 2,
            procs_per_node: 2,
            modules: 3,
            functions_per_module: 4,
            histograms: 6,
            bins: 20,
            seed,
        }
    }
}

/// The eight Paradyn metrics exported.
pub const PARADYN_METRICS: [&str; 8] = [
    "cpu",
    "cpu_inclusive",
    "exec_time",
    "sync_wait",
    "msg_bytes_sent",
    "msg_bytes_recv",
    "io_wait",
    "procedure_calls",
];

/// A complete Paradyn export: resources, index, histograms, and the
/// Performance Consultant's search history graph.
#[derive(Debug, Clone)]
pub struct ParadynExport {
    pub resources: GenFile,
    pub index: GenFile,
    pub histograms: Vec<GenFile>,
    /// The search history graph exported from the Performance Consultant.
    pub shg: GenFile,
}

impl ParadynExport {
    /// All files, flattened.
    pub fn all_files(&self) -> Vec<GenFile> {
        let mut v = vec![self.resources.clone(), self.index.clone(), self.shg.clone()];
        v.extend(self.histograms.iter().cloned());
        v
    }
}

/// Hypotheses the Performance Consultant tests.
pub const PC_HYPOTHESES: [&str; 4] = [
    "TopLevelHypothesis",
    "CPUbound",
    "ExcessiveSyncWaitingTime",
    "ExcessiveIOBlockingTime",
];

/// Generate one export.
pub fn generate(cfg: &ParadynConfig) -> ParadynExport {
    let mut rng = rng_for(cfg.seed, &format!("paradyn:{}", cfg.exec_name));

    // --- resources file -----------------------------------------------------
    let mut resources = String::with_capacity(256 * 1024);
    let mut code_foci: Vec<String> = Vec::new();
    let mut machine_foci: Vec<String> = Vec::new();
    resources.push_str("/Code\n");
    for m in 0..cfg.modules {
        let module = format!("irs_mod_{m:02}.c");
        resources.push_str(&format!("/Code/{module}\n"));
        for f in 0..cfg.functions_per_module {
            let func = format!("func_{m:02}_{f:02}");
            resources.push_str(&format!("/Code/{module}/{func}\n"));
            code_foci.push(format!("/Code/{module}/{func}"));
        }
    }
    resources.push_str("/Machine\n");
    for n in 0..cfg.nodes {
        let node = format!("mcr{:03}", 100 + n);
        resources.push_str(&format!("/Machine/{node}\n"));
        for p in 0..cfg.procs_per_node {
            // Paradyn names processes by pid; vary per execution.
            let pid = 1000 + rng.gen_range(0..9000);
            let proc_path = format!("/Machine/{node}/irs{{{pid}}}_{p}");
            resources.push_str(&format!("{proc_path}\n"));
            resources.push_str(&format!("{proc_path}/thr_1\n"));
            machine_foci.push(proc_path);
        }
    }
    resources.push_str("/SyncObject\n");
    resources.push_str("/SyncObject/Message\n");
    for comm in ["MPI_COMM_WORLD", "MPI_COMM_SELF"] {
        resources.push_str(&format!("/SyncObject/Message/{comm}\n"));
    }
    resources.push_str("/SyncObject/Window\n");

    // --- histograms + index ---------------------------------------------------
    let mut index = String::new();
    index.push_str("# histogram_file metric focus\n");
    let mut histograms = Vec::with_capacity(cfg.histograms);
    // Paradyn histogram bins are global time slices: every histogram in
    // one export shares the same bin width (so PerfTrack can share bin
    // resources under the global phase, as §4.3 describes).
    let bin_width = jitter(&mut rng, 0.2, 0.1);
    for h in 0..cfg.histograms {
        let metric = PARADYN_METRICS[h % PARADYN_METRICS.len()];
        // Focus: a code resource, sometimes refined by a process.
        let code = &code_foci[rng.gen_range(0..code_foci.len())];
        let focus = if rng.gen_bool(0.5) {
            let m = &machine_foci[rng.gen_range(0..machine_foci.len())];
            format!("{code},{m}")
        } else {
            code.clone()
        };
        let file_name = format!("{}_hist_{h:04}.hist", cfg.exec_name);
        index.push_str(&format!("{file_name} {metric} {focus}\n"));

        let mut hist = String::with_capacity(cfg.bins * 10 + 200);
        hist.push_str("# Paradyn histogram export\n");
        hist.push_str(&format!("metric: {metric}\n"));
        hist.push_str(&format!("focus: {focus}\n"));
        hist.push_str(&format!("numBins: {}\n", cfg.bins));
        hist.push_str(&format!("binWidth: {bin_width:.4}\n"));
        hist.push_str("startTime: 0.0\n");
        hist.push_str("values:\n");
        // Dynamic instrumentation starts at a random bin; everything
        // before is nan. The insertion point varies per histogram and per
        // execution.
        let start = rng.gen_range(0..cfg.bins / 2);
        let base = jitter(&mut rng, 0.1, 0.8);
        for b in 0..cfg.bins {
            if b < start {
                hist.push_str("nan\n");
            } else {
                hist.push_str(&format!("{:.6}\n", jitter(&mut rng, base, 0.3)));
            }
        }
        histograms.push(GenFile {
            name: file_name,
            content: hist,
        });
    }

    // --- search history graph -------------------------------------------------
    // The Performance Consultant starts at the top-level hypothesis and
    // refines true nodes by hypothesis and by focus. Node lines:
    //   node <id> <parent|root> <hypothesis> <focus> <true|false|unknown>
    let mut shg = String::new();
    shg.push_str("# Paradyn search history graph export\n");
    shg.push_str("node 0 root TopLevelHypothesis /Code true\n");
    let mut next_id = 1u32;
    let mut frontier: Vec<(u32, usize)> = vec![(0, 0)]; // (node id, depth)
    while let Some((parent, depth)) = frontier.pop() {
        if depth >= 3 || next_id > 40 {
            continue;
        }
        let children = rng.gen_range(1..4);
        for _ in 0..children {
            let hypo = PC_HYPOTHESES[1 + rng.gen_range(0..3)];
            // Deeper refinements narrow the focus.
            let focus = match depth {
                0 => "/Code".to_string(),
                1 => code_foci[rng.gen_range(0..code_foci.len())].clone(),
                _ => format!(
                    "{},{}",
                    code_foci[rng.gen_range(0..code_foci.len())],
                    machine_foci[rng.gen_range(0..machine_foci.len())]
                ),
            };
            let state = match rng.gen_range(0..10) {
                0..=3 => "true",
                4..=8 => "false",
                _ => "unknown",
            };
            shg.push_str(&format!("node {next_id} {parent} {hypo} {focus} {state}\n"));
            if state == "true" {
                frontier.push((next_id, depth + 1));
            }
            next_id += 1;
        }
    }

    ParadynExport {
        resources: GenFile {
            name: format!("{}.resources", cfg.exec_name),
            content: resources,
        },
        index: GenFile {
            name: format!("{}.index", cfg.exec_name),
            content: index,
        },
        histograms,
        shg: GenFile {
            name: format!("{}.shg", cfg.exec_name),
            content: shg,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_structure() {
        let e = generate(&ParadynConfig::small("irs-p1", 3));
        assert!(e
            .resources
            .content
            .contains("/Code/irs_mod_00.c/func_00_00"));
        assert!(e
            .resources
            .content
            .contains("/SyncObject/Message/MPI_COMM_WORLD"));
        assert_eq!(e.histograms.len(), 6);
        assert_eq!(e.index.content.lines().count(), 7); // header + 6
        for h in &e.histograms {
            assert!(h.content.contains("numBins: 20"));
            assert_eq!(
                h.content
                    .lines()
                    .skip_while(|l| *l != "values:")
                    .skip(1)
                    .count(),
                20
            );
        }
    }

    #[test]
    fn nan_prefix_models_late_instrumentation() {
        let e = generate(&ParadynConfig::small("irs-p1", 5));
        let mut any_nan = false;
        for h in &e.histograms {
            let values: Vec<&str> = h
                .content
                .lines()
                .skip_while(|l| *l != "values:")
                .skip(1)
                .collect();
            // nans form a (possibly empty) prefix only.
            let first_real = values
                .iter()
                .position(|v| *v != "nan")
                .unwrap_or(values.len());
            assert!(values[first_real..].iter().all(|v| *v != "nan"));
            any_nan |= first_real > 0;
        }
        assert!(any_nan, "some histograms start with nan bins");
    }

    #[test]
    fn executions_vary_in_resource_and_bin_counts() {
        // §4.3: counts differ across executions because instrumentation
        // timing and pids differ.
        let a = generate(&ParadynConfig::small("irs-p1", 1));
        let b = generate(&ParadynConfig::small("irs-p2", 2));
        assert_ne!(a.resources.content, b.resources.content);
        let nan_count = |e: &ParadynExport| {
            e.histograms
                .iter()
                .flat_map(|h| h.content.lines())
                .filter(|l| *l == "nan")
                .count()
        };
        assert_ne!(nan_count(&a), nan_count(&b));
    }

    #[test]
    fn shg_structure_is_a_rooted_tree_of_known_hypotheses() {
        let e = generate(&ParadynConfig::small("irs-p1", 9));
        let mut ids = std::collections::HashSet::new();
        for line in e.shg.content.lines().filter(|l| l.starts_with("node")) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(parts.len(), 6, "bad shg line {line}");
            let id: u32 = parts[1].parse().unwrap();
            if parts[2] != "root" {
                let parent: u32 = parts[2].parse().unwrap();
                assert!(ids.contains(&parent), "parent before child");
            }
            assert!(PC_HYPOTHESES.contains(&parts[3]), "{}", parts[3]);
            assert!(["true", "false", "unknown"].contains(&parts[5]));
            ids.insert(id);
        }
        assert!(ids.len() > 1, "search refined beyond the root");
    }

    #[test]
    fn paper_scale_resource_count() {
        let e = generate(&ParadynConfig::paper_scale("irs-big", 7));
        let n = e.resources.content.lines().count();
        // modules*functions + modules + machine nodes*procs*2 + fixed ≈
        // 200*80 + 200 + 16*2*2 ≈ 16.4k — the paper's ~17k per execution.
        assert!(n > 16_000 && n < 18_000, "got {n}");
        assert_eq!(e.histograms.len(), 280);
    }
}
