//! PTrun: automatic capture of runtime environment information (§3.3).
//!
//! The run script records environment variables, process/thread counts,
//! runtime (dynamic) libraries, and the input deck name and timestamp,
//! emitting `environment` and `execution` hierarchy resources plus
//! `inputDeck` and `submission` resources with attributes.

use perftrack_ptdf::{AttrType, PtdfStatement};

/// One dynamic library observed at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeLib {
    pub name: String,
    pub version: String,
    /// `MPI`, `thread`, `math`, ... (the paper's library-type attribute).
    pub kind: String,
    pub size_bytes: u64,
    pub timestamp: String,
}

/// Everything PTrun captures for one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunInfo {
    pub exec_name: String,
    pub application: String,
    pub processes: usize,
    pub threads_per_process: usize,
    pub environment: Vec<(String, String)>,
    pub libraries: Vec<RuntimeLib>,
    pub input_deck: String,
    pub input_deck_timestamp: String,
    /// Batch submission identifier (e.g. LCRM/SLURM job id).
    pub submission_id: String,
}

impl RunInfo {
    /// A typical MPI run description used by the simulated studies.
    pub fn simulated(exec_name: &str, application: &str, np: usize) -> Self {
        RunInfo {
            exec_name: exec_name.to_string(),
            application: application.to_string(),
            processes: np,
            threads_per_process: 1,
            environment: vec![
                ("MP_PROCS".into(), np.to_string()),
                ("OMP_NUM_THREADS".into(), "1".into()),
                ("LD_LIBRARY_PATH".into(), "/usr/lib:/opt/mpi/lib".into()),
            ],
            libraries: vec![
                RuntimeLib {
                    name: "libmpi.so".into(),
                    version: "7.0.1".into(),
                    kind: "MPI".into(),
                    size_bytes: 2_345_678,
                    timestamp: "2005-03-14T09:26:53".into(),
                },
                RuntimeLib {
                    name: "libpthread.so".into(),
                    version: "2.3".into(),
                    kind: "thread".into(),
                    size_bytes: 123_456,
                    timestamp: "2004-11-02T12:00:00".into(),
                },
                RuntimeLib {
                    name: "libm.so".into(),
                    version: "2.3".into(),
                    kind: "math".into(),
                    size_bytes: 654_321,
                    timestamp: "2004-11-02T12:00:00".into(),
                },
            ],
            input_deck: format!("zrad.{np}"),
            input_deck_timestamp: "2005-06-01T08:00:00".into(),
            submission_id: format!("job-{:06}", 37_000 + np),
        }
    }

    /// Capture the *actual* current process environment (selected
    /// variables) — the real-capture path.
    pub fn from_current_env(exec_name: &str, application: &str, np: usize) -> Self {
        let mut info = Self::simulated(exec_name, application, np);
        info.environment = std::env::vars()
            .filter(|(k, _)| {
                ["PATH", "HOME", "USER", "SHELL", "LANG", "HOSTNAME"].contains(&k.as_str())
            })
            .collect();
        info.environment.sort();
        info
    }
}

/// Convert run info to PTdf: execution/process resources, an environment
/// hierarchy with one module per runtime library, inputDeck and
/// submission resources, and attributes for everything else.
pub fn to_ptdf(info: &RunInfo) -> Vec<PtdfStatement> {
    let mut out = Vec::new();
    out.push(PtdfStatement::Application {
        name: info.application.clone(),
    });
    out.push(PtdfStatement::Execution {
        name: info.exec_name.clone(),
        application: info.application.clone(),
    });
    let attr = |resource: &str, name: &str, value: &str| PtdfStatement::ResourceAttribute {
        resource: resource.to_string(),
        attribute: name.to_string(),
        value: value.to_string(),
        attr_type: AttrType::String,
    };
    // Execution hierarchy: the run, its processes, their threads.
    let run = format!("/{}", info.exec_name);
    out.push(PtdfStatement::Resource {
        name: run.clone(),
        type_path: "execution".into(),
        execution: Some(info.exec_name.clone()),
    });
    out.push(attr(&run, "processes", &info.processes.to_string()));
    out.push(attr(
        &run,
        "threads per process",
        &info.threads_per_process.to_string(),
    ));
    for (k, v) in &info.environment {
        out.push(attr(&run, &format!("env:{k}"), v));
    }
    for p in 0..info.processes {
        let proc = format!("{run}/process{p}");
        out.push(PtdfStatement::Resource {
            name: proc.clone(),
            type_path: "execution/process".into(),
            execution: Some(info.exec_name.clone()),
        });
        for t in 0..info.threads_per_process.max(1) {
            if info.threads_per_process > 1 {
                out.push(PtdfStatement::Resource {
                    name: format!("{proc}/thread{t}"),
                    type_path: "execution/process/thread".into(),
                    execution: Some(info.exec_name.clone()),
                });
            }
        }
    }
    // Environment hierarchy: runtime libraries as modules.
    let env = format!("/{}-env", info.exec_name);
    out.push(PtdfStatement::Resource {
        name: env.clone(),
        type_path: "environment".into(),
        execution: Some(info.exec_name.clone()),
    });
    for lib in &info.libraries {
        let module = format!("{env}/{}", lib.name);
        out.push(PtdfStatement::Resource {
            name: module.clone(),
            type_path: "environment/module".into(),
            execution: Some(info.exec_name.clone()),
        });
        out.push(attr(&module, "version", &lib.version));
        out.push(attr(&module, "type", &lib.kind));
        out.push(attr(&module, "size", &lib.size_bytes.to_string()));
        out.push(attr(&module, "timestamp", &lib.timestamp));
    }
    // Input deck and submission.
    let deck = format!("/{}", info.input_deck);
    out.push(PtdfStatement::Resource {
        name: deck.clone(),
        type_path: "inputDeck".into(),
        execution: None,
    });
    out.push(attr(&deck, "timestamp", &info.input_deck_timestamp));
    let sub = format!("/{}", info.submission_id);
    out.push(PtdfStatement::Resource {
        name: sub.clone(),
        type_path: "submission".into(),
        execution: Some(info.exec_name.clone()),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_run_info_shape() {
        let info = RunInfo::simulated("irs-0001", "IRS", 8);
        assert_eq!(info.processes, 8);
        assert_eq!(info.libraries.len(), 3);
        assert!(info.libraries.iter().any(|l| l.kind == "MPI"));
        assert_eq!(info.input_deck, "zrad.8");
    }

    #[test]
    fn ptdf_loads_and_describes_the_run() {
        use perftrack::PTDataStore;
        let info = RunInfo::simulated("irs-0001", "IRS", 4);
        let store = PTDataStore::in_memory().unwrap();
        let stats = store.load_statements(&to_ptdf(&info)).unwrap();
        assert_eq!(stats.executions, 1);
        // run + 4 processes + env + 3 libs + deck + submission = 11.
        assert_eq!(stats.resources, 11);
        let run = store.resource_by_name("/irs-0001").unwrap().unwrap();
        let attrs = store.attributes_of(run.id).unwrap();
        assert!(attrs.iter().any(|(n, v, _)| n == "processes" && v == "4"));
        assert!(attrs.iter().any(|(n, _, _)| n.starts_with("env:")));
        let lib = store
            .resource_by_name("/irs-0001-env/libmpi.so")
            .unwrap()
            .unwrap();
        let attrs = store.attributes_of(lib.id).unwrap();
        assert!(attrs.iter().any(|(n, v, _)| n == "type" && v == "MPI"));
    }

    #[test]
    fn threads_emitted_only_for_hybrid_runs() {
        let mut info = RunInfo::simulated("e", "A", 2);
        info.threads_per_process = 2;
        let stmts = to_ptdf(&info);
        let threads = stmts
            .iter()
            .filter(|s| {
                matches!(s, PtdfStatement::Resource { type_path, .. }
                    if type_path == "execution/process/thread")
            })
            .count();
        assert_eq!(threads, 4);
    }

    #[test]
    fn current_env_capture_includes_known_vars() {
        // PATH is essentially always present.
        let info = RunInfo::from_current_env("e", "A", 1);
        assert!(info.environment.iter().any(|(k, _)| k == "PATH"));
    }
}
