//! Declarative machine models.
//!
//! The paper loads descriptive machine data (grid/machine/partition/node/
//! processor resources with attributes) into PerfTrack before any study;
//! for §4.2 the UV and BG/L descriptions had to be added first. These
//! models reproduce that data for the four platforms the paper uses, plus
//! a generic model for arbitrary hosts. Node counts are capped at emit
//! time — BG/L's 16k nodes would be pure bulk — with the machine-level
//! attributes still recording the true totals.

use perftrack_ptdf::{AttrType, PtdfStatement};

/// A machine description sufficient to emit its resource hierarchy.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Grid (top-level) resource name, e.g. `MCRGrid`.
    pub grid: String,
    /// Machine name, e.g. `MCR`.
    pub name: String,
    pub os_name: String,
    pub os_version: String,
    pub vendor: String,
    pub processor_type: String,
    pub clock_mhz: u32,
    pub interconnect: String,
    /// Partitions: `(name, node count, processors per node)`.
    pub partitions: Vec<(String, usize, usize)>,
    /// Memory per node in GB.
    pub memory_gb: u32,
}

impl MachineModel {
    /// MCR: the paper's Linux cluster.
    pub fn mcr() -> Self {
        MachineModel {
            grid: "MCRGrid".into(),
            name: "MCR".into(),
            os_name: "Linux".into(),
            os_version: "CHAOS 2.0".into(),
            vendor: "Intel".into(),
            processor_type: "Xeon".into(),
            clock_mhz: 2400,
            interconnect: "Quadrics Elan3".into(),
            partitions: vec![("batch".into(), 1152, 2), ("debug".into(), 32, 2)],
            memory_gb: 4,
        }
    }

    /// Frost: the paper's AIX cluster (IBM Power3).
    pub fn frost() -> Self {
        MachineModel {
            grid: "SingleMachineFrost".into(),
            name: "Frost".into(),
            os_name: "AIX".into(),
            os_version: "5.1".into(),
            vendor: "IBM".into(),
            processor_type: "Power3".into(),
            clock_mhz: 375,
            interconnect: "SP Switch".into(),
            partitions: vec![("batch".into(), 68, 16), ("debug".into(), 4, 16)],
            memory_gb: 16,
        }
    }

    /// UV: ASC Purple early-delivery system — 128 8-way Power4+ nodes at
    /// 1.5 GHz (§4.2).
    pub fn uv() -> Self {
        MachineModel {
            grid: "PurpleGrid".into(),
            name: "UV".into(),
            os_name: "AIX".into(),
            os_version: "5.2".into(),
            vendor: "IBM".into(),
            processor_type: "Power4+".into(),
            clock_mhz: 1500,
            interconnect: "Federation".into(),
            partitions: vec![("batch".into(), 128, 8)],
            memory_gb: 32,
        }
    }

    /// BG/L in its early installation phase: one partition of 16k
    /// PowerPC 440 nodes (§4.2).
    pub fn bgl() -> Self {
        MachineModel {
            grid: "BGLGrid".into(),
            name: "BGL".into(),
            os_name: "CNK".into(),
            os_version: "1.0".into(),
            vendor: "IBM".into(),
            processor_type: "PowerPC 440".into(),
            clock_mhz: 700,
            interconnect: "3D Torus".into(),
            partitions: vec![("partition0".into(), 16384, 2)],
            memory_gb: 1,
        }
    }

    /// A generic single-partition model for an arbitrary host (used by
    /// the capture scripts when no model matches).
    pub fn generic(name: &str, os_name: &str, nodes: usize, procs: usize) -> Self {
        MachineModel {
            grid: format!("{name}Grid"),
            name: name.into(),
            os_name: os_name.into(),
            os_version: "unknown".into(),
            vendor: "unknown".into(),
            processor_type: "unknown".into(),
            clock_mhz: 0,
            interconnect: "unknown".into(),
            partitions: vec![("batch".into(), nodes, procs)],
            memory_gb: 0,
        }
    }

    /// Full resource name of the machine.
    pub fn machine_resource(&self) -> String {
        format!("/{}/{}", self.grid, self.name)
    }

    /// Full resource name of node `n` of partition `partition`.
    pub fn node_resource(&self, partition: &str, n: usize) -> String {
        format!(
            "/{}/{}/{}/{}{n}",
            self.grid,
            self.name,
            partition,
            self.name.to_lowercase()
        )
    }

    /// Full resource name of processor `p` on a node.
    pub fn processor_resource(&self, partition: &str, n: usize, p: usize) -> String {
        format!("{}/p{p}", self.node_resource(partition, n))
    }

    /// Emit the PTdf statements describing this machine, with at most
    /// `max_nodes` nodes per partition materialized as resources.
    pub fn to_ptdf(&self, max_nodes: usize) -> Vec<PtdfStatement> {
        let mut out = Vec::new();
        let grid = format!("/{}", self.grid);
        out.push(PtdfStatement::Resource {
            name: grid.clone(),
            type_path: "grid".into(),
            execution: None,
        });
        let machine = self.machine_resource();
        out.push(PtdfStatement::Resource {
            name: machine.clone(),
            type_path: "grid/machine".into(),
            execution: None,
        });
        let attr = |resource: &str, name: &str, value: String| PtdfStatement::ResourceAttribute {
            resource: resource.to_string(),
            attribute: name.to_string(),
            value,
            attr_type: AttrType::String,
        };
        out.push(attr(&machine, "operating system", self.os_name.clone()));
        out.push(attr(&machine, "os version", self.os_version.clone()));
        out.push(attr(&machine, "interconnect", self.interconnect.clone()));
        out.push(attr(
            &machine,
            "total nodes",
            self.partitions
                .iter()
                .map(|p| p.1)
                .sum::<usize>()
                .to_string(),
        ));
        for (pname, nodes, procs) in &self.partitions {
            let part = format!("{machine}/{pname}");
            out.push(PtdfStatement::Resource {
                name: part.clone(),
                type_path: "grid/machine/partition".into(),
                execution: None,
            });
            out.push(attr(&part, "node count", nodes.to_string()));
            for n in 0..(*nodes).min(max_nodes) {
                let node = self.node_resource(pname, n);
                out.push(PtdfStatement::Resource {
                    name: node.clone(),
                    type_path: "grid/machine/partition/node".into(),
                    execution: None,
                });
                out.push(attr(&node, "memory GB", self.memory_gb.to_string()));
                for p in 0..*procs {
                    let proc = self.processor_resource(pname, n, p);
                    out.push(PtdfStatement::Resource {
                        name: proc.clone(),
                        type_path: "grid/machine/partition/node/processor".into(),
                        execution: None,
                    });
                    out.push(attr(&proc, "vendor", self.vendor.clone()));
                    out.push(attr(&proc, "processor type", self.processor_type.clone()));
                    out.push(attr(&proc, "clock MHz", self.clock_mhz.to_string()));
                }
            }
        }
        out
    }

    /// The model matching a machine tag used by the workload presets.
    pub fn by_tag(tag: &str) -> Option<MachineModel> {
        match tag {
            "MCR" => Some(Self::mcr()),
            "Frost" => Some(Self::frost()),
            "UV" => Some(Self::uv()),
            "BGL" => Some(Self::bgl()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_have_paper_properties() {
        let uv = MachineModel::uv();
        assert_eq!(uv.partitions[0].1, 128);
        assert_eq!(uv.partitions[0].2, 8);
        assert_eq!(uv.clock_mhz, 1500);
        assert_eq!(uv.processor_type, "Power4+");
        let bgl = MachineModel::bgl();
        assert_eq!(bgl.partitions[0].1, 16384);
        assert_eq!(bgl.processor_type, "PowerPC 440");
        assert_eq!(MachineModel::mcr().os_name, "Linux");
        assert_eq!(MachineModel::frost().os_name, "AIX");
    }

    #[test]
    fn ptdf_emission_caps_nodes_but_keeps_totals() {
        let bgl = MachineModel::bgl();
        let stmts = bgl.to_ptdf(4);
        let nodes = stmts
            .iter()
            .filter(|s| {
                matches!(s, PtdfStatement::Resource { type_path, .. }
                    if type_path == "grid/machine/partition/node")
            })
            .count();
        assert_eq!(nodes, 4);
        assert!(stmts.iter().any(|s| matches!(
            s,
            PtdfStatement::ResourceAttribute { attribute, value, .. }
                if attribute == "total nodes" && value == "16384"
        )));
    }

    #[test]
    fn emitted_ptdf_loads_into_a_store() {
        use perftrack::PTDataStore;
        let store = PTDataStore::in_memory().unwrap();
        for model in [
            MachineModel::mcr(),
            MachineModel::frost(),
            MachineModel::uv(),
            MachineModel::bgl(),
        ] {
            let stats = store.load_statements(&model.to_ptdf(2)).unwrap();
            assert!(stats.resources > 0);
        }
        // Resource names resolve.
        assert!(store
            .resource_id(&MachineModel::uv().processor_resource("batch", 0, 7))
            .is_some());
    }

    #[test]
    fn by_tag_lookup() {
        assert!(MachineModel::by_tag("MCR").is_some());
        assert!(MachineModel::by_tag("BGL").is_some());
        assert!(MachineModel::by_tag("Unknown").is_none());
    }
}
