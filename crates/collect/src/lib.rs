//! # perftrack-collect
//!
//! PerfTrack's data-collection modules (§3.3): machine models that emit
//! the grid hierarchies for the paper's platforms (MCR, Frost, UV, BG/L),
//! PTbuild-equivalent build capture (compilers, flags, wrapped MPI
//! compilers, linked libraries, build environment), and PTrun-equivalent
//! runtime capture (processes, environment variables, dynamic libraries,
//! input decks, submissions) — all emitting PTdf.

pub mod build;
pub mod machines;
pub mod run;

pub use build::{
    capture_build, parse_make_output, simulated_irs_build, to_ptdf as build_to_ptdf, BuildInfo,
    CommandRunner, CompilerUse, SimulatedRunner, SystemRunner,
};
pub use machines::MachineModel;
pub use run::{to_ptdf as run_to_ptdf, RunInfo, RuntimeLib};
