//! PTbuild: automatic capture of build information (§3.3).
//!
//! The paper's wrapper script runs `make`, captures its output, and
//! records two categories of data: *build environment* (OS, build
//! machine, shell environment) and *compilation* information (compilers,
//! versions, flags, linked static libraries — unwrapping MPI compiler
//! wrappers to find the real compiler underneath).
//!
//! Commands run through a [`CommandRunner`] so tests and the simulated
//! studies are deterministic; [`SystemRunner`] shells out for real use.

use perftrack_ptdf::{AttrType, PtdfStatement};
use std::collections::BTreeMap;

/// Executes a command line and returns its stdout (or an error string).
pub trait CommandRunner {
    /// Run `program args...`, returning stdout.
    fn run(&self, program: &str, args: &[&str]) -> Result<String, String>;
}

/// Runs real processes.
pub struct SystemRunner;

impl CommandRunner for SystemRunner {
    fn run(&self, program: &str, args: &[&str]) -> Result<String, String> {
        let out = std::process::Command::new(program)
            .args(args)
            .output()
            .map_err(|e| e.to_string())?;
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    }
}

/// Canned command outputs for deterministic capture.
#[derive(Default)]
pub struct SimulatedRunner {
    responses: BTreeMap<String, String>,
}

impl SimulatedRunner {
    /// Empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the stdout for `program args...`.
    pub fn on(mut self, command: &str, stdout: &str) -> Self {
        self.responses
            .insert(command.to_string(), stdout.to_string());
        self
    }
}

impl CommandRunner for SimulatedRunner {
    fn run(&self, program: &str, args: &[&str]) -> Result<String, String> {
        let key = if args.is_empty() {
            program.to_string()
        } else {
            format!("{program} {}", args.join(" "))
        };
        self.responses
            .get(&key)
            .cloned()
            .ok_or_else(|| format!("no canned output for {key:?}"))
    }
}

/// One compiler invocation observed in the build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilerUse {
    /// The command as invoked (`mpicc`, `gcc`, `xlf`).
    pub name: String,
    /// Version string if obtainable.
    pub version: Option<String>,
    /// Distinct flags used across invocations.
    pub flags: Vec<String>,
    /// Source modules compiled.
    pub modules: Vec<String>,
    /// The underlying compiler when `name` is an MPI wrapper.
    pub wraps: Option<String>,
}

/// Everything PTbuild captures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Name of the build (becomes the build resource), e.g. `irs-build-01`.
    pub build_name: String,
    pub application: String,
    /// Machine/node the build ran on.
    pub build_host: String,
    pub os_name: String,
    pub os_version: String,
    /// Captured shell environment (selected variables).
    pub environment: Vec<(String, String)>,
    pub compilers: Vec<CompilerUse>,
    /// `-l` libraries linked.
    pub static_libs: Vec<String>,
}

/// Known compiler commands (wrappers listed with their usual backends).
const COMPILERS: [(&str, Option<&str>); 8] = [
    ("mpicc", Some("cc")),
    ("mpif77", Some("f77")),
    ("mpxlf", Some("xlf")),
    ("gcc", None),
    ("cc", None),
    ("icc", None),
    ("xlc", None),
    ("xlf", None),
];

/// Parse `make` output into compiler usage and linked libraries.
pub fn parse_make_output(output: &str) -> (Vec<CompilerUse>, Vec<String>) {
    let mut uses: BTreeMap<String, CompilerUse> = BTreeMap::new();
    let mut libs: Vec<String> = Vec::new();
    for line in output.lines() {
        let mut tokens = line.split_whitespace();
        let Some(cmd) = tokens.next() else { continue };
        let Some(&(name, wraps)) = COMPILERS.iter().find(|(c, _)| *c == cmd) else {
            continue;
        };
        let entry = uses.entry(name.to_string()).or_insert_with(|| CompilerUse {
            name: name.to_string(),
            version: None,
            flags: Vec::new(),
            modules: Vec::new(),
            wraps: wraps.map(str::to_string),
        });
        for tok in tokens {
            if let Some(lib) = tok.strip_prefix("-l") {
                if !libs.contains(&lib.to_string()) {
                    libs.push(lib.to_string());
                }
            } else if tok.starts_with('-') {
                if !entry.flags.contains(&tok.to_string()) {
                    entry.flags.push(tok.to_string());
                }
            } else if (tok.ends_with(".c") || tok.ends_with(".f") || tok.ends_with(".C"))
                && !entry.modules.contains(&tok.to_string())
            {
                entry.modules.push(tok.to_string());
            }
        }
    }
    (uses.into_values().collect(), libs)
}

/// Run the build through the runner and capture everything.
///
/// `env` is the shell environment to record (pass a filtered set; the
/// paper records the build user's shell settings).
pub fn capture_build(
    runner: &dyn CommandRunner,
    build_name: &str,
    application: &str,
    make_args: &[&str],
    env: &[(String, String)],
) -> Result<BuildInfo, String> {
    let make_output = runner.run("make", make_args)?;
    let (mut compilers, static_libs) = parse_make_output(&make_output);
    // Unwrap MPI wrappers (`mpicc -show` prints the underlying command)
    // and collect versions.
    for c in &mut compilers {
        if c.wraps.is_some() {
            if let Ok(show) = runner.run(&c.name, &["-show"]) {
                if let Some(real) = show.split_whitespace().next() {
                    c.wraps = Some(real.to_string());
                }
            }
        }
        if let Ok(v) = runner.run(&c.name, &["--version"]) {
            c.version = v.lines().next().map(str::to_string);
        }
    }
    let uname_s = runner
        .run("uname", &["-s"])
        .unwrap_or_else(|_| "unknown".into());
    let uname_r = runner
        .run("uname", &["-r"])
        .unwrap_or_else(|_| "unknown".into());
    let hostname = runner
        .run("hostname", &[])
        .unwrap_or_else(|_| "unknown".into());
    Ok(BuildInfo {
        build_name: build_name.to_string(),
        application: application.to_string(),
        build_host: hostname.trim().to_string(),
        os_name: uname_s.trim().to_string(),
        os_version: uname_r.trim().to_string(),
        environment: env.to_vec(),
        compilers,
        static_libs,
    })
}

/// Convert captured build info to PTdf: a `build` hierarchy resource with
/// module children, `compiler` and `operatingSystem` resources, and
/// attributes for flags, versions, libraries, and the environment.
pub fn to_ptdf(info: &BuildInfo) -> Vec<PtdfStatement> {
    let mut out = Vec::new();
    out.push(PtdfStatement::Application {
        name: info.application.clone(),
    });
    let build = format!("/{}", info.build_name);
    out.push(PtdfStatement::Resource {
        name: build.clone(),
        type_path: "build".into(),
        execution: None,
    });
    let attr = |resource: &str, name: &str, value: &str| PtdfStatement::ResourceAttribute {
        resource: resource.to_string(),
        attribute: name.to_string(),
        value: value.to_string(),
        attr_type: AttrType::String,
    };
    out.push(attr(&build, "build host", &info.build_host));
    for (k, v) in &info.environment {
        out.push(attr(&build, &format!("env:{k}"), v));
    }
    for lib in &info.static_libs {
        out.push(attr(&build, "static library", lib));
    }
    // OS resource.
    let os = format!("/{}-{}", info.os_name, info.os_version).replace(' ', "_");
    out.push(PtdfStatement::Resource {
        name: os.clone(),
        type_path: "operatingSystem".into(),
        execution: None,
    });
    out.push(attr(&os, "name", &info.os_name));
    out.push(attr(&os, "version", &info.os_version));
    out.push(attr(&build, "operating system", &os));
    // Compilers + modules.
    for c in &info.compilers {
        let comp = format!("/{}", c.name);
        out.push(PtdfStatement::Resource {
            name: comp.clone(),
            type_path: "compiler".into(),
            execution: None,
        });
        if let Some(v) = &c.version {
            out.push(attr(&comp, "version", v));
        }
        if let Some(w) = &c.wraps {
            out.push(attr(&comp, "wraps", w));
        }
        if !c.flags.is_empty() {
            out.push(attr(&comp, "flags", &c.flags.join(" ")));
        }
        for m in &c.modules {
            let module = format!("{build}/{m}");
            out.push(PtdfStatement::Resource {
                name: module.clone(),
                type_path: "build/module".into(),
                execution: None,
            });
            out.push(attr(&module, "compiler", &c.name));
        }
    }
    out
}

/// A canned runner reproducing a typical MPI application build, for the
/// simulated case studies.
pub fn simulated_irs_build() -> SimulatedRunner {
    SimulatedRunner::new()
        .on(
            "make -f Makefile.irs",
            "mpicc -O2 -qarch=auto -c irs.c\n\
             mpicc -O2 -qarch=auto -c rmatmult3.c\n\
             mpicc -O2 -qarch=auto -c SetupHydro.c\n\
             mpicc -O2 -o irs irs.o rmatmult3.o SetupHydro.o -lm -lmpi\n",
        )
        .on("mpicc -show", "xlc -I/usr/lpp/ppe.poe/include -lmpi\n")
        .on("mpicc --version", "IBM XL C/C++ Enterprise Edition V7.0\n")
        .on("uname -s", "AIX\n")
        .on("uname -r", "5.1\n")
        .on("hostname", "frost017\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_make_output_extracts_compilers_flags_libs() {
        let (compilers, libs) = parse_make_output(
            "mpicc -O2 -g -c a.c\nmpicc -O2 -c b.c\ngcc -O3 -c c.c\nmpicc -o app a.o b.o -lm -lmpi\necho done\n",
        );
        assert_eq!(compilers.len(), 2);
        let mpicc = compilers.iter().find(|c| c.name == "mpicc").unwrap();
        assert_eq!(mpicc.flags, vec!["-O2", "-g", "-c", "-o"]);
        assert_eq!(mpicc.modules, vec!["a.c", "b.c"]);
        assert_eq!(mpicc.wraps.as_deref(), Some("cc"));
        let gcc = compilers.iter().find(|c| c.name == "gcc").unwrap();
        assert_eq!(gcc.modules, vec!["c.c"]);
        assert_eq!(gcc.wraps, None);
        assert_eq!(libs, vec!["m", "mpi"]);
    }

    #[test]
    fn capture_build_unwraps_mpi_wrapper() {
        let runner = simulated_irs_build();
        let info = capture_build(
            &runner,
            "irs-build-01",
            "IRS",
            &["-f", "Makefile.irs"],
            &[("CC".into(), "mpicc".into())],
        )
        .unwrap();
        assert_eq!(info.os_name, "AIX");
        assert_eq!(info.build_host, "frost017");
        let mpicc = &info.compilers[0];
        assert_eq!(mpicc.wraps.as_deref(), Some("xlc"), "wrapper unwrapped");
        assert!(mpicc.version.as_deref().unwrap().contains("XL C"));
        assert_eq!(info.static_libs, vec!["m", "mpi"]);
    }

    #[test]
    fn ptdf_output_loads() {
        use perftrack::PTDataStore;
        let runner = simulated_irs_build();
        let info =
            capture_build(&runner, "irs-build-01", "IRS", &["-f", "Makefile.irs"], &[]).unwrap();
        let stmts = to_ptdf(&info);
        let store = PTDataStore::in_memory().unwrap();
        let stats = store.load_statements(&stmts).unwrap();
        assert!(stats.resources >= 5, "build, os, compiler, modules");
        assert!(store.resource_id("/irs-build-01/irs.c").is_some());
        let build = store.resource_by_name("/irs-build-01").unwrap().unwrap();
        let attrs = store.attributes_of(build.id).unwrap();
        assert!(attrs.iter().any(|(n, _, _)| n == "build host"));
        assert!(attrs
            .iter()
            .any(|(n, v, _)| n == "static library" && v == "mpi"));
    }

    #[test]
    fn missing_canned_command_errors() {
        let runner = SimulatedRunner::new();
        assert!(capture_build(&runner, "b", "A", &[], &[]).is_err());
    }

    #[test]
    fn system_runner_runs_real_commands() {
        // `true` exists everywhere we run tests.
        let out = SystemRunner.run("true", &[]).unwrap();
        assert!(out.is_empty());
        assert!(SystemRunner
            .run("definitely-not-a-command-xyz", &[])
            .is_err());
    }
}
