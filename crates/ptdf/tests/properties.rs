//! Property tests for PTdf: print→parse identity over arbitrary
//! statements, and tokenizer quoting round-trips.

use perftrack_ptdf::lexer::{quote, tokenize};
use perftrack_ptdf::{parse_str, to_string, AttrType, PtdfResourceSet, PtdfStatement};
use proptest::prelude::*;

/// Free-form names (may need quoting).
fn arb_name() -> impl Strategy<Value = String> {
    "[ -~]{1,24}".prop_filter("non-empty after trim", |s| !s.trim().is_empty())
}

/// Resource names: no commas/colons/parens (the resource-set field's
/// structural characters), as the format requires.
fn arb_resource_name() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9_.{}-]{1,8}", 1..4)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

fn arb_resource_set() -> impl Strategy<Value = PtdfResourceSet> {
    (
        prop::collection::vec(arb_resource_name(), 1..4),
        prop::sample::select(vec!["primary", "parent", "child", "sender", "receiver"]),
    )
        .prop_map(|(resources, set_type)| PtdfResourceSet {
            resources,
            set_type: set_type.to_string(),
        })
}

fn arb_statement() -> impl Strategy<Value = PtdfStatement> {
    prop_oneof![
        arb_name().prop_map(|name| PtdfStatement::Application { name }),
        prop::collection::vec("[a-zA-Z]{1,8}", 1..4).prop_map(|segs| {
            PtdfStatement::ResourceType {
                type_path: segs.join("/"),
            }
        }),
        (arb_name(), arb_name())
            .prop_map(|(name, application)| PtdfStatement::Execution { name, application }),
        (
            arb_resource_name(),
            "[a-z/]{1,16}",
            prop::option::of(arb_name())
        )
            .prop_map(|(name, type_path, execution)| PtdfStatement::Resource {
                name,
                type_path,
                execution
            }),
        (arb_resource_name(), arb_name(), arb_name()).prop_map(|(resource, attribute, value)| {
            PtdfStatement::ResourceAttribute {
                resource,
                attribute,
                value,
                attr_type: AttrType::String,
            }
        }),
        (
            arb_name(),
            prop::collection::vec(arb_resource_set(), 1..4),
            arb_name(),
            arb_name(),
            -1.0e12f64..1.0e12,
            arb_name(),
        )
            .prop_map(|(execution, resource_sets, tool, metric, value, units)| {
                PtdfStatement::PerfResult {
                    execution,
                    resource_sets,
                    tool,
                    metric,
                    value,
                    units,
                }
            }),
        (arb_resource_name(), arb_resource_name())
            .prop_map(|(first, second)| PtdfStatement::ResourceConstraint { first, second }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any statement prints to a line that parses back to itself.
    #[test]
    fn print_parse_identity(stmt in arb_statement()) {
        let text = to_string(std::slice::from_ref(&stmt));
        let parsed = parse_str(&text)
            .unwrap_or_else(|e| panic!("reparse failed for {text:?}: {e}"));
        prop_assert_eq!(parsed.len(), 1);
        match (&stmt, &parsed[0]) {
            // Float formatting must round-trip exactly via Display.
            (
                PtdfStatement::PerfResult { value: a, .. },
                PtdfStatement::PerfResult { value: b, .. },
            ) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(&stmt, &parsed[0]);
            }
            _ => prop_assert_eq!(&stmt, &parsed[0]),
        }
    }

    /// Documents of many statements round-trip as a whole.
    #[test]
    fn document_roundtrip(stmts in prop::collection::vec(arb_statement(), 0..20)) {
        let text = to_string(&stmts);
        let parsed = parse_str(&text).unwrap();
        prop_assert_eq!(stmts, parsed);
    }

    /// quote() always produces a single token that tokenizes back.
    #[test]
    fn quote_tokenize_roundtrip(token in "[ -~]{0,40}") {
        let quoted = quote(&token);
        let toks = tokenize(&quoted, 1).unwrap();
        if token.trim().is_empty() && token.is_empty() {
            prop_assert_eq!(toks, vec![String::new()]);
        } else {
            prop_assert_eq!(toks.len(), 1, "quoted {:?}", quoted);
            prop_assert_eq!(&toks[0], &token);
        }
    }

    /// Tokenizing any line never panics and errors carry the line number.
    #[test]
    fn tokenizer_total(line in "[ -~]{0,80}", line_no in 1usize..1000) {
        match tokenize(&line, line_no) {
            Ok(_) => {}
            Err(e) => {
                let needle = format!("line {line_no}");
                prop_assert!(e.to_string().contains(&needle));
            }
        }
    }
}
