//! Line tokenizer for the PTdf format.
//!
//! PTdf is line-oriented: one statement per line, whitespace-separated
//! tokens, `#` comments, blank lines ignored. Tokens containing
//! whitespace, quotes, `#`, or that are empty are written double-quoted
//! with `\"` and `\\` escapes (metric names like `"CPU time"` need this).

use crate::PtdfError;

/// Split one line into tokens. Returns an empty vector for blank/comment
/// lines.
pub fn tokenize(line: &str, line_no: usize) -> Result<Vec<String>, PtdfError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        // Skip whitespace.
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('#') => break, // comment to end of line
            Some('"') => {
                chars.next();
                let mut tok = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('"') => tok.push('"'),
                            Some('\\') => tok.push('\\'),
                            Some(other) => {
                                return Err(PtdfError::new(
                                    line_no,
                                    format!("bad escape \\{other} in quoted token"),
                                ));
                            }
                            None => {
                                return Err(PtdfError::new(
                                    line_no,
                                    "dangling backslash in quoted token".to_string(),
                                ));
                            }
                        },
                        '"' => {
                            closed = true;
                            break;
                        }
                        other => tok.push(other),
                    }
                }
                if !closed {
                    return Err(PtdfError::new(line_no, "unterminated quote".to_string()));
                }
                tokens.push(tok);
            }
            Some(_) => {
                let mut tok = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '#' {
                        break;
                    }
                    tok.push(c);
                    chars.next();
                }
                tokens.push(tok);
            }
        }
    }
    Ok(tokens)
}

/// Quote a token for output if it needs quoting.
pub fn quote(token: &str) -> String {
    let needs = token.is_empty()
        || token
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '#' || c == '\\');
    if !needs {
        return token.to_string();
    }
    let mut out = String::with_capacity(token.len() + 2);
    out.push('"');
    for c in token.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_tokens() {
        assert_eq!(
            tokenize("Application IRS", 1).unwrap(),
            vec!["Application", "IRS"]
        );
        assert_eq!(
            tokenize("   spaced   out  ", 1).unwrap(),
            vec!["spaced", "out"]
        );
    }

    #[test]
    fn blank_and_comment_lines() {
        assert!(tokenize("", 1).unwrap().is_empty());
        assert!(tokenize("   ", 1).unwrap().is_empty());
        assert!(tokenize("# a comment", 1).unwrap().is_empty());
        assert_eq!(tokenize("tok # trailing", 1).unwrap(), vec!["tok"]);
    }

    #[test]
    fn quoted_tokens_with_escapes() {
        assert_eq!(
            tokenize(r#"Metric "CPU time" "say \"hi\"" "back\\slash""#, 1).unwrap(),
            vec!["Metric", "CPU time", "say \"hi\"", "back\\slash"]
        );
        // Empty quoted token.
        assert_eq!(tokenize(r#"a "" b"#, 1).unwrap(), vec!["a", "", "b"]);
    }

    #[test]
    fn quote_errors() {
        assert!(tokenize("\"unterminated", 3)
            .unwrap_err()
            .to_string()
            .contains("line 3"));
        assert!(tokenize(r#""bad \x escape""#, 1).is_err());
        assert!(tokenize("\"dangling \\", 1).is_err());
    }

    #[test]
    fn quote_roundtrip() {
        for tok in ["plain", "has space", "has\"quote", "", "ends\\", "#hash"] {
            let q = quote(tok);
            let parsed = tokenize(&q, 1).unwrap();
            assert_eq!(parsed, vec![tok.to_string()], "token {tok:?} via {q:?}");
        }
        assert_eq!(quote("plain"), "plain", "no needless quoting");
    }
}
