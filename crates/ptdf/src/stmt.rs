//! PTdf statements (the Figure 6 grammar) and their parsing/printing.

use crate::lexer::{quote, tokenize};
use crate::PtdfError;
use std::fmt;

/// Attribute value type. The paper's prototype defines `string` and
/// `resource`; the field is "partly a placeholder" for richer types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Free-form string value.
    String,
    /// Value names another resource (a cross-reference).
    Resource,
}

impl AttrType {
    /// Canonical lowercase keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AttrType::String => "string",
            AttrType::Resource => "resource",
        }
    }

    /// Parse the keyword (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "string" => Some(AttrType::String),
            "resource" => Some(AttrType::Resource),
            _ => None,
        }
    }
}

/// One resource set of a PerfResult: names plus a set-type (role) name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtdfResourceSet {
    /// Full resource names participating in the set.
    pub resources: Vec<String>,
    /// Set type name in parentheses (`primary`, `parent`, ...).
    pub set_type: String,
}

/// A parsed PTdf statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PtdfStatement {
    /// `Application appName`
    Application {
        /// Application name.
        name: String,
    },
    /// `ResourceType resourceTypeName`
    ResourceType {
        /// Slash-separated resource-type path.
        type_path: String,
    },
    /// `Execution execName appName`
    Execution {
        /// Execution name.
        name: String,
        /// Owning application name.
        application: String,
    },
    /// `Resource resourceName resourceTypeName [execName]`
    Resource {
        /// Full slash-separated resource name.
        name: String,
        /// Resource-type path the resource instantiates.
        type_path: String,
        /// Execution the resource is scoped to, if any.
        execution: Option<String>,
    },
    /// `ResourceAttribute resourceName attributeName attributeValue attributeType`
    ResourceAttribute {
        /// Resource the attribute describes.
        resource: String,
        /// Attribute name.
        attribute: String,
        /// Attribute value, encoded per `attr_type`.
        value: String,
        /// Declared type of `value`.
        attr_type: AttrType,
    },
    /// `PerfResult execName resourceSet perfToolName metricName value units`
    PerfResult {
        /// Execution the measurement belongs to.
        execution: String,
        /// Resource sets the measurement is attributed to.
        resource_sets: Vec<PtdfResourceSet>,
        /// Tool that produced the measurement.
        tool: String,
        /// Metric name (e.g. "wall time").
        metric: String,
        /// Measured value.
        value: f64,
        /// Units of `value`.
        units: String,
    },
    /// `ResourceConstraint resourceName1 resourceName2` — equivalent to a
    /// resource-typed attribute.
    ResourceConstraint {
        /// Resource carrying the constraint.
        first: String,
        /// Resource it is constrained to.
        second: String,
    },
}

impl PtdfStatement {
    /// Parse one line; `Ok(None)` for blank/comment lines.
    pub fn parse_line(line: &str, line_no: usize) -> Result<Option<PtdfStatement>, PtdfError> {
        let tokens = tokenize(line, line_no)?;
        if tokens.is_empty() {
            return Ok(None);
        }
        let err = |msg: String| PtdfError::new(line_no, msg);
        let expect = |n: usize| -> Result<(), PtdfError> {
            if tokens.len() - 1 == n {
                Ok(())
            } else {
                Err(PtdfError::new(
                    line_no,
                    format!(
                        "{} expects {} fields, got {}",
                        tokens[0],
                        n,
                        tokens.len() - 1
                    ),
                ))
            }
        };
        let stmt = match tokens[0].as_str() {
            "Application" => {
                expect(1)?;
                PtdfStatement::Application {
                    name: tokens[1].clone(),
                }
            }
            "ResourceType" => {
                expect(1)?;
                PtdfStatement::ResourceType {
                    type_path: tokens[1].clone(),
                }
            }
            "Execution" => {
                expect(2)?;
                PtdfStatement::Execution {
                    name: tokens[1].clone(),
                    application: tokens[2].clone(),
                }
            }
            "Resource" => {
                if tokens.len() == 3 {
                    PtdfStatement::Resource {
                        name: tokens[1].clone(),
                        type_path: tokens[2].clone(),
                        execution: None,
                    }
                } else if tokens.len() == 4 {
                    PtdfStatement::Resource {
                        name: tokens[1].clone(),
                        type_path: tokens[2].clone(),
                        execution: Some(tokens[3].clone()),
                    }
                } else {
                    return Err(err(format!(
                        "Resource expects 2 or 3 fields, got {}",
                        tokens.len() - 1
                    )));
                }
            }
            "ResourceAttribute" => {
                expect(4)?;
                let attr_type = AttrType::parse(&tokens[4])
                    .ok_or_else(|| err(format!("bad attribute type {:?}", tokens[4])))?;
                PtdfStatement::ResourceAttribute {
                    resource: tokens[1].clone(),
                    attribute: tokens[2].clone(),
                    value: tokens[3].clone(),
                    attr_type,
                }
            }
            "PerfResult" => {
                expect(6)?;
                let resource_sets = parse_resource_sets(&tokens[2], line_no)?;
                let value: f64 = tokens[5]
                    .parse()
                    .map_err(|_| err(format!("bad numeric value {:?}", tokens[5])))?;
                PtdfStatement::PerfResult {
                    execution: tokens[1].clone(),
                    resource_sets,
                    tool: tokens[3].clone(),
                    metric: tokens[4].clone(),
                    value,
                    units: tokens[6].clone(),
                }
            }
            "ResourceConstraint" => {
                expect(2)?;
                PtdfStatement::ResourceConstraint {
                    first: tokens[1].clone(),
                    second: tokens[2].clone(),
                }
            }
            other => return Err(err(format!("unknown statement {other:?}"))),
        };
        Ok(Some(stmt))
    }
}

/// Parse the resource-set field: colon-separated lists, each a
/// comma-separated resource-name list followed by a set type name in
/// parentheses. Example: `/irs,/M/m/b/n/p0(primary):/irs/build/f(parent)`.
/// A bare list with no parentheses is treated as `(primary)`.
pub fn parse_resource_sets(field: &str, line_no: usize) -> Result<Vec<PtdfResourceSet>, PtdfError> {
    let mut sets = Vec::new();
    for part in field.split(':') {
        let part = part.trim();
        if part.is_empty() {
            return Err(PtdfError::new(line_no, "empty resource set".to_string()));
        }
        let (names_part, set_type) = match part.rfind('(') {
            Some(open) => {
                let close = part.rfind(')').filter(|&c| c > open).ok_or_else(|| {
                    PtdfError::new(line_no, format!("unclosed set type in {part:?}"))
                })?;
                if close != part.len() - 1 {
                    return Err(PtdfError::new(
                        line_no,
                        format!("trailing characters after set type in {part:?}"),
                    ));
                }
                (&part[..open], part[open + 1..close].to_string())
            }
            None => (part, "primary".to_string()),
        };
        let resources: Vec<String> = names_part
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if resources.is_empty() {
            return Err(PtdfError::new(
                line_no,
                format!("resource set {part:?} names no resources"),
            ));
        }
        sets.push(PtdfResourceSet {
            resources,
            set_type,
        });
    }
    Ok(sets)
}

/// Render the resource-set field (inverse of [`parse_resource_sets`]).
pub fn format_resource_sets(sets: &[PtdfResourceSet]) -> String {
    sets.iter()
        .map(|s| format!("{}({})", s.resources.join(","), s.set_type))
        .collect::<Vec<_>>()
        .join(":")
}

impl fmt::Display for PtdfStatement {
    /// Canonical single-line PTdf rendering (parseable back).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtdfStatement::Application { name } => {
                write!(f, "Application {}", quote(name))
            }
            PtdfStatement::ResourceType { type_path } => {
                write!(f, "ResourceType {}", quote(type_path))
            }
            PtdfStatement::Execution { name, application } => {
                write!(f, "Execution {} {}", quote(name), quote(application))
            }
            PtdfStatement::Resource {
                name,
                type_path,
                execution,
            } => {
                write!(f, "Resource {} {}", quote(name), quote(type_path))?;
                if let Some(e) = execution {
                    write!(f, " {}", quote(e))?;
                }
                Ok(())
            }
            PtdfStatement::ResourceAttribute {
                resource,
                attribute,
                value,
                attr_type,
            } => write!(
                f,
                "ResourceAttribute {} {} {} {}",
                quote(resource),
                quote(attribute),
                quote(value),
                attr_type.keyword()
            ),
            PtdfStatement::PerfResult {
                execution,
                resource_sets,
                tool,
                metric,
                value,
                units,
            } => write!(
                f,
                "PerfResult {} {} {} {} {} {}",
                quote(execution),
                quote(&format_resource_sets(resource_sets)),
                quote(tool),
                quote(metric),
                value,
                quote(units)
            ),
            PtdfStatement::ResourceConstraint { first, second } => {
                write!(f, "ResourceConstraint {} {}", quote(first), quote(second))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse1(line: &str) -> PtdfStatement {
        PtdfStatement::parse_line(line, 1).unwrap().unwrap()
    }

    #[test]
    fn parse_each_statement_kind() {
        assert_eq!(
            parse1("Application IRS"),
            PtdfStatement::Application { name: "IRS".into() }
        );
        assert_eq!(
            parse1("ResourceType grid/machine/partition"),
            PtdfStatement::ResourceType {
                type_path: "grid/machine/partition".into()
            }
        );
        assert_eq!(
            parse1("Execution irs-mcr-064 IRS"),
            PtdfStatement::Execution {
                name: "irs-mcr-064".into(),
                application: "IRS".into()
            }
        );
        assert_eq!(
            parse1("Resource /MCRGrid/MCR grid/machine"),
            PtdfStatement::Resource {
                name: "/MCRGrid/MCR".into(),
                type_path: "grid/machine".into(),
                execution: None
            }
        );
        assert_eq!(
            parse1("Resource /irs-run execution irs-mcr-064"),
            PtdfStatement::Resource {
                name: "/irs-run".into(),
                type_path: "execution".into(),
                execution: Some("irs-mcr-064".into())
            }
        );
        assert_eq!(
            parse1(r#"ResourceAttribute /MCRGrid/MCR "clock MHz" 2400 string"#),
            PtdfStatement::ResourceAttribute {
                resource: "/MCRGrid/MCR".into(),
                attribute: "clock MHz".into(),
                value: "2400".into(),
                attr_type: AttrType::String
            }
        );
        assert_eq!(
            parse1("ResourceConstraint /exec/p8 /MCRGrid/MCR/batch/n16"),
            PtdfStatement::ResourceConstraint {
                first: "/exec/p8".into(),
                second: "/MCRGrid/MCR/batch/n16".into()
            }
        );
    }

    #[test]
    fn parse_perf_result_multi_set() {
        let s = parse1(
            r#"PerfResult irs-1 "/irs/env/MPI_Send(primary):/irs/build/solve(parent)" mpiP "MPI time" 3.5 seconds"#,
        );
        match s {
            PtdfStatement::PerfResult {
                execution,
                resource_sets,
                tool,
                metric,
                value,
                units,
            } => {
                assert_eq!(execution, "irs-1");
                assert_eq!(resource_sets.len(), 2);
                assert_eq!(resource_sets[0].set_type, "primary");
                assert_eq!(resource_sets[1].set_type, "parent");
                assert_eq!(resource_sets[1].resources, vec!["/irs/build/solve"]);
                assert_eq!(tool, "mpiP");
                assert_eq!(metric, "MPI time");
                assert_eq!(value, 3.5);
                assert_eq!(units, "seconds");
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn bare_resource_set_defaults_to_primary() {
        let sets = parse_resource_sets("/a,/b", 1).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].set_type, "primary");
        assert_eq!(sets[0].resources, vec!["/a", "/b"]);
    }

    #[test]
    fn resource_set_errors() {
        assert!(parse_resource_sets("", 1).is_err());
        assert!(parse_resource_sets("(primary)", 1).is_err());
        assert!(parse_resource_sets("/a(primary):", 1).is_err());
        assert!(parse_resource_sets("/a(unclosed", 1).is_err());
        assert!(parse_resource_sets("/a(primary)x", 1).is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = PtdfStatement::parse_line("Bogus x", 42).unwrap_err();
        assert!(e.to_string().contains("line 42"));
        assert!(PtdfStatement::parse_line("Application", 1).is_err());
        assert!(PtdfStatement::parse_line("Execution only-one", 1).is_err());
        assert!(
            PtdfStatement::parse_line("PerfResult e /r(primary) tool metric NaNish units", 1)
                .is_err()
        );
        assert!(PtdfStatement::parse_line("ResourceAttribute /r a v badtype", 1).is_err());
    }

    #[test]
    fn blank_and_comment_lines_skipped() {
        assert_eq!(PtdfStatement::parse_line("", 1).unwrap(), None);
        assert_eq!(PtdfStatement::parse_line("# note", 1).unwrap(), None);
    }

    #[test]
    fn display_parse_roundtrip() {
        let samples = vec![
            PtdfStatement::Application {
                name: "SMG 2000".into(),
            },
            PtdfStatement::ResourceType {
                type_path: "time/interval".into(),
            },
            PtdfStatement::Execution {
                name: "smg-uv-0007".into(),
                application: "SMG 2000".into(),
            },
            PtdfStatement::Resource {
                name: "/UVGrid/UV/batch/uv12/p3".into(),
                type_path: "grid/machine/partition/node/processor".into(),
                execution: None,
            },
            PtdfStatement::Resource {
                name: "/smg-run".into(),
                type_path: "execution".into(),
                execution: Some("smg-uv-0007".into()),
            },
            PtdfStatement::ResourceAttribute {
                resource: "/UVGrid/UV".into(),
                attribute: "operating system".into(),
                value: "AIX 5.2".into(),
                attr_type: AttrType::String,
            },
            PtdfStatement::ResourceAttribute {
                resource: "/smg-run/process8".into(),
                attribute: "node".into(),
                value: "/UVGrid/UV/batch/uv12".into(),
                attr_type: AttrType::Resource,
            },
            PtdfStatement::PerfResult {
                execution: "smg-uv-0007".into(),
                resource_sets: vec![
                    PtdfResourceSet {
                        resources: vec!["/env/MPI_Wait".into(), "/smg-run/process3".into()],
                        set_type: "primary".into(),
                    },
                    PtdfResourceSet {
                        resources: vec!["/build/smg.c/main".into()],
                        set_type: "parent".into(),
                    },
                ],
                tool: "mpiP".into(),
                metric: "Aggregate MPI time".into(),
                value: 123.456,
                units: "seconds".into(),
            },
            PtdfStatement::ResourceConstraint {
                first: "/smg-run/process8".into(),
                second: "/UVGrid/UV/batch/uv16".into(),
            },
        ];
        for stmt in samples {
            let line = stmt.to_string();
            let reparsed = PtdfStatement::parse_line(&line, 1)
                .unwrap_or_else(|e| panic!("reparse failed for {line:?}: {e}"))
                .unwrap();
            assert_eq!(stmt, reparsed, "roundtrip through {line:?}");
        }
    }
}
