//! # perftrack-ptdf
//!
//! The PerfTrack data format (PTdf, Figure 6 of the SC|05 paper): the
//! line-oriented interchange format every tool converter emits and the
//! data-loading interface consumes. This crate provides the tokenizer,
//! statement parser, canonical writer, and a streaming reader for large
//! files.
//!
//! ```
//! use perftrack_ptdf::{parse_str, PtdfStatement};
//!
//! let text = r#"
//! Application IRS
//! Execution irs-001 IRS
//! Resource /MCRGrid grid
//! PerfResult irs-001 /MCRGrid(primary) IRS "wall time" 12.5 seconds
//! "#;
//! let stmts = parse_str(text).unwrap();
//! assert_eq!(stmts.len(), 4);
//! assert!(matches!(stmts[0], PtdfStatement::Application { .. }));
//! ```

#![deny(missing_docs)]

pub mod lexer;
pub mod stmt;

pub use stmt::{
    format_resource_sets, parse_resource_sets, AttrType, PtdfResourceSet, PtdfStatement,
};

use std::fmt;
use std::io::{BufRead, Write};

/// A PTdf parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtdfError {
    /// 1-based line number where parsing failed.
    pub line: usize,
    /// What went wrong, phrased for the person fixing the file.
    pub message: String,
}

impl PtdfError {
    /// Construct an error at `line`.
    pub fn new(line: usize, message: String) -> Self {
        PtdfError { line, message }
    }
}

impl fmt::Display for PtdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PTdf line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PtdfError {}

/// Parse a whole PTdf document from a string.
pub fn parse_str(text: &str) -> Result<Vec<PtdfStatement>, PtdfError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(stmt) = PtdfStatement::parse_line(line, i + 1)? {
            out.push(stmt);
        }
    }
    Ok(out)
}

/// Render statements as a PTdf document.
pub fn to_string(stmts: &[PtdfStatement]) -> String {
    let mut out = String::new();
    for s in stmts {
        out.push_str(&s.to_string());
        out.push('\n');
    }
    out
}

/// Write statements to an `io::Write` (buffer it for large documents).
pub fn write_all<W: Write>(w: &mut W, stmts: &[PtdfStatement]) -> std::io::Result<()> {
    for s in stmts {
        writeln!(w, "{s}")?;
    }
    Ok(())
}

/// Streaming PTdf reader over any `BufRead`; yields one statement at a
/// time without materializing the document.
pub struct PtdfReader<R: BufRead> {
    reader: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> PtdfReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        PtdfReader {
            reader,
            line_no: 0,
            buf: String::new(),
        }
    }
}

/// Errors from streaming reads: I/O or parse.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line was read but did not parse as a PTdf statement.
    Parse(PtdfError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl<R: BufRead> Iterator for PtdfReader<R> {
    type Item = Result<PtdfStatement, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    match PtdfStatement::parse_line(self.buf.trim_end_matches('\n'), self.line_no) {
                        Ok(Some(stmt)) => return Some(Ok(stmt)),
                        Ok(None) => continue,
                        Err(e) => return Some(Err(ReadError::Parse(e))),
                    }
                }
                Err(e) => return Some(Err(ReadError::Io(e))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_document_with_mixed_lines() {
        let doc = "\n# header comment\nApplication IRS\n\nExecution e1 IRS\n";
        let stmts = parse_str(doc).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn document_roundtrip() {
        let doc = parse_str(
            r#"Application IRS
ResourceType syncObject
Execution e1 IRS
Resource /g grid
ResourceAttribute /g "os name" Linux string
PerfResult e1 /g(primary) IRS "wall time" 1.25 seconds
ResourceConstraint /g /g
"#,
        )
        .unwrap();
        let text = to_string(&doc);
        let reparsed = parse_str(&text).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn error_includes_line_number() {
        let doc = "Application IRS\nBadStatement x\n";
        let err = parse_str(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn streaming_reader_matches_parse_str() {
        let doc = "Application A\n# skip\nExecution e A\nPerfResult e /r(primary) t m 1 u\n";
        let streamed: Vec<PtdfStatement> = PtdfReader::new(doc.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, parse_str(doc).unwrap());
    }

    #[test]
    fn streaming_reader_reports_parse_error() {
        let doc = "Application A\nNope\n";
        let results: Vec<_> = PtdfReader::new(doc.as_bytes()).collect();
        assert!(results[0].is_ok());
        assert!(matches!(&results[1], Err(ReadError::Parse(e)) if e.line == 2));
    }

    #[test]
    fn write_all_to_vec() {
        let stmts = parse_str("Application A\n").unwrap();
        let mut buf = Vec::new();
        write_all(&mut buf, &stmts).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "Application A\n");
    }
}
