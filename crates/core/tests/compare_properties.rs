//! Property tests for the execution-comparison engine, using a seeded
//! deterministic generator (no proptest dependency, matching the
//! model-checker precedent elsewhere in the workspace): deltas are
//! antisymmetric under argument swap, self-comparison is exactly zero,
//! and alignment tolerates deliberately mismatched resource trees.

use perftrack::compare::{Aggregate, CompareOptions, Normalization};
use perftrack::{Compare, PTDataStore};

/// Small deterministic LCG (same constants as the bench harness).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A positive value in roughly `(0, 100)`.
    fn value(&mut self) -> f64 {
        (self.below(10_000) + 1) as f64 / 100.0
    }
}

/// Build a store with two executions over a random module/function tree.
/// Each execution measures a random subset of the functions, so trees
/// mismatch in both directions. Returns the store and the function count.
fn random_store(seed: u64) -> PTDataStore {
    let mut rng = Lcg::new(seed);
    let store = PTDataStore::in_memory().unwrap();
    let modules = 1 + rng.below(3);
    let mut ptdf =
        String::from("Application App\nResource /app application\nResource /build build\n");
    let mut functions = Vec::new();
    for m in 0..modules {
        ptdf.push_str(&format!("Resource /build/m{m}.c build/module\n"));
        for f in 0..(1 + rng.below(4)) {
            let name = format!("/build/m{m}.c/fn{f}");
            ptdf.push_str(&format!("Resource {name} build/module/function\n"));
            functions.push(name);
        }
    }
    for exec in ["x", "y"] {
        ptdf.push_str(&format!("Execution {exec} App\n"));
        for f in &functions {
            // ~75% of functions are measured per execution; the rest are
            // the mismatched subtrees alignment must tolerate.
            if rng.below(4) < 3 {
                let reps = 1 + rng.below(3);
                for _ in 0..reps {
                    ptdf.push_str(&format!(
                        "PerfResult {exec} \"/app,{f}(primary)\" T \"CPU time\" {} seconds\n",
                        rng.value()
                    ));
                }
            }
        }
    }
    store.load_ptdf_str(&ptdf).unwrap();
    store
}

fn all_options() -> Vec<CompareOptions> {
    let mut opts = Vec::new();
    for aggregate in [
        Aggregate::Mean,
        Aggregate::Sum,
        Aggregate::Min,
        Aggregate::Max,
    ] {
        for normalization in [Normalization::Raw, Normalization::Share] {
            opts.push(CompareOptions {
                aggregate,
                normalization,
                threshold_pct: 25.0,
                top: usize::MAX,
            });
        }
    }
    opts
}

#[test]
fn deltas_are_antisymmetric_under_swap() {
    for seed in 0..20 {
        let store = random_store(seed);
        let cmp = Compare::new(&store);
        for opts in all_options() {
            let fwd = cmp.tree_compare(&["x", "y"], &opts).unwrap();
            let rev = cmp.tree_compare(&["y", "x"], &opts).unwrap();
            assert_eq!(fwd.ranked_total, rev.ranked_total, "seed {seed}");
            for f in &fwd.ranked {
                let r = rev
                    .ranked
                    .iter()
                    .find(|r| r.resource == f.resource && r.metric == f.metric)
                    .unwrap_or_else(|| panic!("seed {seed}: {} missing in reverse", f.resource));
                assert!(
                    (f.delta + r.delta).abs() <= 1e-9 * f.delta.abs().max(1.0),
                    "seed {seed}: delta not antisymmetric: {} vs {}",
                    f.delta,
                    r.delta
                );
                if let (Some(fq), Some(rq)) = (f.ratio, r.ratio) {
                    assert!(
                        (fq * rq - 1.0).abs() < 1e-9,
                        "seed {seed}: ratios not reciprocal: {fq} * {rq}"
                    );
                }
                assert!(
                    (f.score - r.score).abs() < 1e-9
                        || (f.score.is_infinite() && r.score.is_infinite()),
                    "seed {seed}: scores differ under swap: {} vs {}",
                    f.score,
                    r.score
                );
            }
            // Presence drift is the same set either way, with flags flipped.
            assert_eq!(fwd.drift.len(), rev.drift.len(), "seed {seed}");
            for d in &fwd.drift {
                let rd = rev
                    .drift
                    .iter()
                    .find(|r| r.resource == d.resource)
                    .unwrap_or_else(|| panic!("seed {seed}: drift {} missing", d.resource));
                assert_eq!(d.present[0], rd.present[1], "seed {seed}");
                assert_eq!(d.present[1], rd.present[0], "seed {seed}");
            }
        }
    }
}

#[test]
fn self_comparison_is_exactly_zero() {
    for seed in 0..20 {
        let store = random_store(seed);
        let cmp = Compare::new(&store);
        for opts in all_options() {
            let t = cmp.tree_compare(&["x", "x"], &opts).unwrap();
            assert_eq!(t.ranked_total, 0, "seed {seed}: self-compare diverges");
            assert!(t.drift.is_empty(), "seed {seed}: self-compare drifts");
            assert!(t.regressions().is_empty() && t.improvements().is_empty());
            // Every cell is measured in both columns with equal values.
            fn walk(n: &perftrack::AlignedNode, seed: u64) {
                for (metric, row) in &n.metrics {
                    assert_eq!(row.len(), 2);
                    assert_eq!(row[0], row[1], "seed {seed}: {} {metric}", n.name);
                }
                for c in &n.children {
                    walk(c, seed);
                }
            }
            for root in &t.roots {
                walk(root, seed);
            }
        }
    }
}

#[test]
fn alignment_tolerates_mismatched_trees() {
    // Deliberate mismatch: executions share only `common`; each has a
    // private subtree the other never measures.
    let store = PTDataStore::in_memory().unwrap();
    store
        .load_ptdf_str(
            "Application App\n\
             Resource /build build\n\
             Resource /build/shared.c build/module\n\
             Resource /build/shared.c/common build/module/function\n\
             Resource /build/old.c build/module\n\
             Resource /build/old.c/legacy build/module/function\n\
             Resource /build/new.c build/module\n\
             Resource /build/new.c/replacement build/module/function\n\
             Execution x App\nExecution y App\n\
             PerfResult x /build/shared.c/common(primary) T t 4.0 s\n\
             PerfResult y /build/shared.c/common(primary) T t 2.0 s\n\
             PerfResult x /build/old.c/legacy(primary) T t 9.0 s\n\
             PerfResult y /build/new.c/replacement(primary) T t 1.0 s\n",
        )
        .unwrap();
    let cmp = Compare::new(&store);
    let t = cmp
        .tree_compare(&["x", "y"], &CompareOptions::default())
        .unwrap();
    // The shared cell aligns and ranks; the private subtrees are drift,
    // not errors, and never rank (only one side has a value).
    assert_eq!(t.aligned_cells, 1);
    assert_eq!(t.ranked.len(), 1);
    assert!(t.ranked[0].resource.ends_with("/common"));
    assert_eq!(t.ranked[0].ratio, Some(0.5));
    let drifted: Vec<&str> = t.drift.iter().map(|d| d.resource.as_str()).collect();
    assert!(drifted.contains(&"/build/old.c"));
    assert!(drifted.contains(&"/build/old.c/legacy"));
    assert!(drifted.contains(&"/build/new.c"));
    assert!(drifted.contains(&"/build/new.c/replacement"));
    assert!(!drifted.contains(&"/build/shared.c/common"));
    // The merged tree still holds both private subtrees under one root.
    let build = t.roots.iter().find(|r| r.name == "/build").unwrap();
    assert_eq!(build.children.len(), 3);
}

#[test]
fn share_normalization_bounds_values() {
    for seed in 0..10 {
        let store = random_store(seed);
        let cmp = Compare::new(&store);
        let opts = CompareOptions {
            normalization: Normalization::Share,
            top: usize::MAX,
            ..CompareOptions::default()
        };
        let t = cmp.tree_compare(&["x", "y"], &opts).unwrap();
        for r in &t.ranked {
            for v in r.values.iter().flatten() {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(v),
                    "seed {seed}: share {v} out of [0,1] at {}",
                    r.resource
                );
            }
        }
    }
}
