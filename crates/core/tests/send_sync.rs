//! Compile-time pin of the query path's threading contract: the store
//! and everything the read-only query path hands out must be
//! `Send + Sync`, so the network service layer can share one store
//! across worker threads and run reader requests concurrently. If a
//! future change smuggles a `!Sync` member (an `Rc`, a `RefCell`, a raw
//! pointer) into any of these types, this file stops compiling —
//! the failure is the diagnostic.

use perftrack::{FreeResourceColumn, PTDataStore, QueryEngine, ResultTable, SelectionDialog};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn query_path_types_are_send_and_sync() {
    assert_send_sync::<PTDataStore>();
    assert_send_sync::<QueryEngine<'static>>();
    assert_send_sync::<SelectionDialog<'static>>();
    assert_send_sync::<ResultTable<'static>>();
    assert_send_sync::<FreeResourceColumn>();
}

/// The runtime half of the same contract: a store behind an `Arc` serves
/// overlapping readers from plain `std::thread`s with no external
/// locking.
#[test]
fn shared_store_serves_concurrent_readers() {
    use perftrack_model::prelude::*;
    use std::sync::Arc;

    let store = Arc::new(PTDataStore::in_memory().unwrap());
    store
        .load_ptdf_str(
            "Application A\nExecution e1 A\nResource /r application\n\
             PerfResult e1 /r(primary) T m 1.5 u\n",
        )
        .unwrap();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut dialog = SelectionDialog::new(&store);
                dialog.add_name("/r", Relatives::from_code('N').unwrap());
                let table = dialog.retrieve().unwrap();
                assert_eq!(table.render().unwrap().len(), 1);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}
