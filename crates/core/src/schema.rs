//! The PerfTrack database schema (Figure 1 of the paper), instantiated on
//! the embedded relational engine.
//!
//! Tables:
//! * `application` — application names.
//! * `focus_framework` — the resource type system (one row per type path);
//!   `resource_item.focus_framework_id` references it.
//! * `execution` — executions, each belonging to an application.
//! * `resource_item` — one row per resource: full name, base name, type,
//!   parent.
//! * `resource_attribute` — string attributes of resources.
//! * `resource_constraint` — resource-valued attributes (resource pairs).
//! * `resource_has_ancestor` / `resource_has_descendant` — transitive
//!   closure of the parent relation, maintained on insert; the paper adds
//!   these "for performance reasons" and the closure-ablation bench
//!   measures exactly that choice.
//! * `metric`, `performance_tool` — interned names.
//! * `performance_result` — the measured values.
//! * `focus` — one row per resource set of a result, with its role
//!   (`primary`, `parent`, `child`, `sender`, `receiver`).
//! * `focus_has_resource` — the resources in each focus.
//! * `load_manifest` — bulk-load bookkeeping: one row per PTdf file ever
//!   loaded, carrying its content hash and batch watermark so interrupted
//!   loads can resume idempotently (`pt load --resume`; see
//!   `docs/FAULTS.md`). Not part of Figure 1 — operational metadata.
//! * `load_token` — retry-safe network loads: one row per idempotency
//!   token a client ever attached to a `LoadPtdf` request, committed in
//!   the same transaction as the rows it covers. A replayed token
//!   returns the recorded counters instead of double-applying
//!   (`docs/SERVER.md` §idempotency). Also operational metadata.

use perftrack_store::{Column, ColumnType, Database, StoreError, StoreResult, TableId};

/// Create `name` if absent, resolve it otherwise. Schema bootstrap is a
/// sequence of DDL statements, each its own checkpoint barrier — a crash
/// can leave any prefix of them durable. Making every step idempotent
/// makes bootstrap as a whole crash-restartable (see `docs/FAULTS.md`).
fn ensure_table(db: &Database, name: &str, columns: Vec<Column>) -> StoreResult<TableId> {
    match db.table_id(name) {
        Ok(t) => Ok(t),
        Err(_) => db.create_table(name, columns),
    }
}

/// Create index `name` if absent; tolerate it already existing.
fn ensure_index(
    db: &Database,
    name: &str,
    table: TableId,
    columns: &[&str],
    unique: bool,
) -> StoreResult<()> {
    match db.create_index(name, table, columns, unique) {
        Ok(_) | Err(StoreError::AlreadyExists(_)) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Resolved table ids for the PerfTrack schema.
#[derive(Debug, Clone, Copy)]
pub struct Schema {
    pub application: TableId,
    pub focus_framework: TableId,
    pub execution: TableId,
    pub resource_item: TableId,
    pub resource_attribute: TableId,
    pub resource_constraint: TableId,
    pub resource_has_ancestor: TableId,
    pub resource_has_descendant: TableId,
    pub metric: TableId,
    pub performance_tool: TableId,
    pub performance_result: TableId,
    pub focus: TableId,
    pub focus_has_resource: TableId,
    pub load_manifest: TableId,
    pub load_token: TableId,
}

/// Column ordinals, by table, for code clarity. Kept in sync with
/// [`Schema::create`] by the `schema_integrity` tests.
pub mod col {
    /// `application(id, name)`
    pub mod application {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
    }
    /// `focus_framework(id, type_path, parent_id)`
    pub mod focus_framework {
        pub const ID: usize = 0;
        pub const TYPE_PATH: usize = 1;
        pub const PARENT_ID: usize = 2;
    }
    /// `execution(id, name, application_id)`
    pub mod execution {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
        pub const APPLICATION_ID: usize = 2;
    }
    /// `resource_item(id, name, base_name, focus_framework_id, parent_id)`
    pub mod resource_item {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
        pub const BASE_NAME: usize = 2;
        pub const FOCUS_FRAMEWORK_ID: usize = 3;
        pub const PARENT_ID: usize = 4;
    }
    /// `resource_attribute(resource_id, name, value, attr_type)`
    pub mod resource_attribute {
        pub const RESOURCE_ID: usize = 0;
        pub const NAME: usize = 1;
        pub const VALUE: usize = 2;
        pub const ATTR_TYPE: usize = 3;
    }
    /// `resource_constraint(resource1_id, resource2_id, name)`
    pub mod resource_constraint {
        pub const RESOURCE1_ID: usize = 0;
        pub const RESOURCE2_ID: usize = 1;
        pub const NAME: usize = 2;
    }
    /// `resource_has_ancestor(resource_id, ancestor_id)`
    pub mod resource_has_ancestor {
        pub const RESOURCE_ID: usize = 0;
        pub const ANCESTOR_ID: usize = 1;
    }
    /// `resource_has_descendant(resource_id, descendant_id)`
    pub mod resource_has_descendant {
        pub const RESOURCE_ID: usize = 0;
        pub const DESCENDANT_ID: usize = 1;
    }
    /// `metric(id, name)`
    pub mod metric {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
    }
    /// `performance_tool(id, name)`
    pub mod performance_tool {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
    }
    /// `performance_result(id, execution_id, metric_id, tool_id, value, units)`
    pub mod performance_result {
        pub const ID: usize = 0;
        pub const EXECUTION_ID: usize = 1;
        pub const METRIC_ID: usize = 2;
        pub const TOOL_ID: usize = 3;
        pub const VALUE: usize = 4;
        pub const UNITS: usize = 5;
    }
    /// `focus(id, result_id, focus_type)`
    pub mod focus {
        pub const ID: usize = 0;
        pub const RESULT_ID: usize = 1;
        pub const FOCUS_TYPE: usize = 2;
    }
    /// `focus_has_resource(focus_id, resource_id)`
    pub mod focus_has_resource {
        pub const FOCUS_ID: usize = 0;
        pub const RESOURCE_ID: usize = 1;
    }
    /// `load_manifest(path, content_hash, watermark, done)`
    pub mod load_manifest {
        pub const PATH: usize = 0;
        pub const CONTENT_HASH: usize = 1;
        pub const WATERMARK: usize = 2;
        pub const DONE: usize = 3;
    }
    /// `load_token(token, statements, applications, resource_types,
    /// executions, resources, attributes, constraints, results)`
    pub mod load_token {
        pub const TOKEN: usize = 0;
        pub const STATEMENTS: usize = 1;
        pub const APPLICATIONS: usize = 2;
        pub const RESOURCE_TYPES: usize = 3;
        pub const EXECUTIONS: usize = 4;
        pub const RESOURCES: usize = 5;
        pub const ATTRIBUTES: usize = 6;
        pub const CONSTRAINTS: usize = 7;
        pub const RESULTS: usize = 8;
    }
}

impl Schema {
    /// Create all tables and indexes on a fresh database.
    pub fn create(db: &Database) -> StoreResult<Schema> {
        let application = ensure_table(
            db,
            "application",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
            ],
        )?;
        ensure_index(db, "application_id", application, &["id"], true)?;
        ensure_index(db, "application_name", application, &["name"], true)?;

        let focus_framework = ensure_table(
            db,
            "focus_framework",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("type_path", ColumnType::Text),
                Column::nullable("parent_id", ColumnType::Int),
            ],
        )?;
        ensure_index(db, "focus_framework_id", focus_framework, &["id"], true)?;
        ensure_index(
            db,
            "focus_framework_path",
            focus_framework,
            &["type_path"],
            true,
        )?;

        let execution = ensure_table(
            db,
            "execution",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("application_id", ColumnType::Int),
            ],
        )?;
        ensure_index(db, "execution_id", execution, &["id"], true)?;
        ensure_index(db, "execution_name", execution, &["name"], true)?;
        ensure_index(db, "execution_app", execution, &["application_id"], false)?;

        let resource_item = ensure_table(
            db,
            "resource_item",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("base_name", ColumnType::Text),
                Column::new("focus_framework_id", ColumnType::Int),
                Column::nullable("parent_id", ColumnType::Int),
            ],
        )?;
        ensure_index(db, "resource_item_id", resource_item, &["id"], true)?;
        ensure_index(db, "resource_item_name", resource_item, &["name"], true)?;
        ensure_index(
            db,
            "resource_item_base",
            resource_item,
            &["base_name"],
            false,
        )?;
        ensure_index(
            db,
            "resource_item_type",
            resource_item,
            &["focus_framework_id"],
            false,
        )?;

        let resource_attribute = ensure_table(
            db,
            "resource_attribute",
            vec![
                Column::new("resource_id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("value", ColumnType::Text),
                Column::new("attr_type", ColumnType::Text),
            ],
        )?;
        ensure_index(
            db,
            "resource_attribute_rid",
            resource_attribute,
            &["resource_id"],
            false,
        )?;
        ensure_index(
            db,
            "resource_attribute_name",
            resource_attribute,
            &["name"],
            false,
        )?;

        let resource_constraint = ensure_table(
            db,
            "resource_constraint",
            vec![
                Column::new("resource1_id", ColumnType::Int),
                Column::new("resource2_id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
            ],
        )?;
        ensure_index(
            db,
            "resource_constraint_r1",
            resource_constraint,
            &["resource1_id"],
            false,
        )?;
        ensure_index(
            db,
            "resource_constraint_r2",
            resource_constraint,
            &["resource2_id"],
            false,
        )?;

        let resource_has_ancestor = ensure_table(
            db,
            "resource_has_ancestor",
            vec![
                Column::new("resource_id", ColumnType::Int),
                Column::new("ancestor_id", ColumnType::Int),
            ],
        )?;
        ensure_index(
            db,
            "rha_resource",
            resource_has_ancestor,
            &["resource_id"],
            false,
        )?;
        ensure_index(
            db,
            "rha_ancestor",
            resource_has_ancestor,
            &["ancestor_id"],
            false,
        )?;

        let resource_has_descendant = ensure_table(
            db,
            "resource_has_descendant",
            vec![
                Column::new("resource_id", ColumnType::Int),
                Column::new("descendant_id", ColumnType::Int),
            ],
        )?;
        ensure_index(
            db,
            "rhd_resource",
            resource_has_descendant,
            &["resource_id"],
            false,
        )?;

        let metric = ensure_table(
            db,
            "metric",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
            ],
        )?;
        ensure_index(db, "metric_id", metric, &["id"], true)?;
        ensure_index(db, "metric_name", metric, &["name"], true)?;

        let performance_tool = ensure_table(
            db,
            "performance_tool",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
            ],
        )?;
        ensure_index(db, "performance_tool_id", performance_tool, &["id"], true)?;
        ensure_index(
            db,
            "performance_tool_name",
            performance_tool,
            &["name"],
            true,
        )?;

        let performance_result = ensure_table(
            db,
            "performance_result",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("execution_id", ColumnType::Int),
                Column::new("metric_id", ColumnType::Int),
                Column::new("tool_id", ColumnType::Int),
                Column::new("value", ColumnType::Real),
                Column::new("units", ColumnType::Text),
            ],
        )?;
        ensure_index(
            db,
            "performance_result_id",
            performance_result,
            &["id"],
            true,
        )?;
        ensure_index(
            db,
            "performance_result_exec",
            performance_result,
            &["execution_id"],
            false,
        )?;
        ensure_index(
            db,
            "performance_result_metric",
            performance_result,
            &["metric_id"],
            false,
        )?;

        let focus = ensure_table(
            db,
            "focus",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("result_id", ColumnType::Int),
                Column::new("focus_type", ColumnType::Text),
            ],
        )?;
        ensure_index(db, "focus_id", focus, &["id"], true)?;
        ensure_index(db, "focus_result", focus, &["result_id"], false)?;

        let focus_has_resource = ensure_table(
            db,
            "focus_has_resource",
            vec![
                Column::new("focus_id", ColumnType::Int),
                Column::new("resource_id", ColumnType::Int),
            ],
        )?;
        ensure_index(db, "fhr_focus", focus_has_resource, &["focus_id"], false)?;
        ensure_index(
            db,
            "fhr_resource",
            focus_has_resource,
            &["resource_id"],
            false,
        )?;

        let load_manifest = Self::create_manifest_table(db)?;
        let load_token = Self::create_token_table(db)?;

        Ok(Schema {
            application,
            focus_framework,
            execution,
            resource_item,
            resource_attribute,
            resource_constraint,
            resource_has_ancestor,
            resource_has_descendant,
            metric,
            performance_tool,
            performance_result,
            focus,
            focus_has_resource,
            load_manifest,
            load_token,
        })
    }

    /// Create the `load_manifest` bookkeeping table (split out so
    /// [`Schema::resolve`] can add it to stores created before it
    /// existed).
    fn create_manifest_table(db: &Database) -> StoreResult<TableId> {
        let load_manifest = ensure_table(
            db,
            "load_manifest",
            vec![
                Column::new("path", ColumnType::Text),
                Column::new("content_hash", ColumnType::Int),
                Column::new("watermark", ColumnType::Int),
                Column::new("done", ColumnType::Int),
            ],
        )?;
        ensure_index(db, "load_manifest_path", load_manifest, &["path"], true)?;
        Ok(load_manifest)
    }

    /// Create the `load_token` idempotency table (split out like
    /// `load_manifest` so [`Schema::resolve`] can add it to stores
    /// created before it existed).
    fn create_token_table(db: &Database) -> StoreResult<TableId> {
        let load_token = ensure_table(
            db,
            "load_token",
            vec![
                Column::new("token", ColumnType::Text),
                Column::new("statements", ColumnType::Int),
                Column::new("applications", ColumnType::Int),
                Column::new("resource_types", ColumnType::Int),
                Column::new("executions", ColumnType::Int),
                Column::new("resources", ColumnType::Int),
                Column::new("attributes", ColumnType::Int),
                Column::new("constraints", ColumnType::Int),
                Column::new("results", ColumnType::Int),
            ],
        )?;
        ensure_index(db, "load_token_token", load_token, &["token"], true)?;
        Ok(load_token)
    }

    /// Resolve table ids on a database where the schema already exists.
    /// Any table still missing is created: that covers both stores from
    /// before a table existed (`load_manifest` is an additive migration)
    /// and stores whose bootstrap was killed between DDL statements — a
    /// crashed `create` and a `resolve` are the same idempotent walk.
    pub fn resolve(db: &Database) -> StoreResult<Schema> {
        Self::create(db)
    }

    /// Create the schema if absent, otherwise resolve it. (Both paths
    /// run the same idempotent ensure-walk; the names document intent.)
    pub fn create_or_resolve(db: &Database) -> StoreResult<Schema> {
        Schema::create(db)
    }

    /// Every table in the schema, with its name (test support and the
    /// CLI's `report tables`).
    pub fn all_tables(&self) -> [(&'static str, TableId); 15] {
        [
            ("application", self.application),
            ("focus_framework", self.focus_framework),
            ("execution", self.execution),
            ("resource_item", self.resource_item),
            ("resource_attribute", self.resource_attribute),
            ("resource_constraint", self.resource_constraint),
            ("resource_has_ancestor", self.resource_has_ancestor),
            ("resource_has_descendant", self.resource_has_descendant),
            ("metric", self.metric),
            ("performance_tool", self.performance_tool),
            ("performance_result", self.performance_result),
            ("focus", self.focus),
            ("focus_has_resource", self.focus_has_resource),
            ("load_manifest", self.load_manifest),
            ("load_token", self.load_token),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve_roundtrip() {
        let db = Database::in_memory();
        let s1 = Schema::create(&db).unwrap();
        let s2 = Schema::resolve(&db).unwrap();
        for ((n1, t1), (n2, t2)) in s1.all_tables().iter().zip(s2.all_tables().iter()) {
            assert_eq!(n1, n2);
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn create_or_resolve_is_idempotent() {
        let db = Database::in_memory();
        let s1 = Schema::create_or_resolve(&db).unwrap();
        let s2 = Schema::create_or_resolve(&db).unwrap();
        assert_eq!(s1.application, s2.application);
        assert_eq!(s1.focus_has_resource, s2.focus_has_resource);
    }

    #[test]
    fn column_ordinals_match_schema() {
        let db = Database::in_memory();
        let s = Schema::create(&db).unwrap();
        assert_eq!(
            db.column_index(s.resource_item, "id").unwrap(),
            col::resource_item::ID
        );
        assert_eq!(
            db.column_index(s.resource_item, "name").unwrap(),
            col::resource_item::NAME
        );
        assert_eq!(
            db.column_index(s.resource_item, "base_name").unwrap(),
            col::resource_item::BASE_NAME
        );
        assert_eq!(
            db.column_index(s.resource_item, "focus_framework_id")
                .unwrap(),
            col::resource_item::FOCUS_FRAMEWORK_ID
        );
        assert_eq!(
            db.column_index(s.resource_item, "parent_id").unwrap(),
            col::resource_item::PARENT_ID
        );
        assert_eq!(
            db.column_index(s.performance_result, "value").unwrap(),
            col::performance_result::VALUE
        );
        assert_eq!(
            db.column_index(s.focus, "focus_type").unwrap(),
            col::focus::FOCUS_TYPE
        );
        assert_eq!(
            db.column_index(s.focus_has_resource, "resource_id")
                .unwrap(),
            col::focus_has_resource::RESOURCE_ID
        );
    }

    #[test]
    fn unique_indexes_enforced() {
        let db = Database::in_memory();
        let s = Schema::create(&db).unwrap();
        use perftrack_store::Value;
        let mut txn = db.begin();
        txn.insert(
            s.application,
            vec![Value::Int(1), Value::Text("IRS".into())],
        )
        .unwrap();
        let err = txn
            .insert(
                s.application,
                vec![Value::Int(2), Value::Text("IRS".into())],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            perftrack_store::StoreError::UniqueViolation(_)
        ));
    }
}
