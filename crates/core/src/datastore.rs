//! `PTDataStore`: the PerfTrack data store interface (§3.3).
//!
//! Wraps the embedded relational database with PerfTrack's semantics:
//! resource-type bootstrap (the base types of Fig. 2 are loaded through
//! the same extension interface users call), resource creation with
//! hierarchy validation and closure-table maintenance, attribute and
//! constraint storage, and performance-result loading — plus PTdf import
//! (serial and parallel-parse) and export.

use crate::error::{PtError, Result};
use crate::schema::{col, Schema};
use parking_lot::{Mutex, RwLock};
use perftrack_model::{ContextRole, ModelError, PerformanceResult, ResourceName, TypeRegistry};
use perftrack_ptdf::{AttrType, PtdfStatement};
use perftrack_store::{Database, DbOptions, Row, Value};
use std::collections::HashMap;
use std::path::Path;

/// A resource row, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    pub id: i64,
    pub name: String,
    pub base_name: String,
    pub type_id: i64,
    pub parent_id: Option<i64>,
}

/// Counters reported by a load (drives the paper's Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    pub statements: usize,
    pub applications: usize,
    pub resource_types: usize,
    pub executions: usize,
    pub resources: usize,
    pub attributes: usize,
    pub constraints: usize,
    pub results: usize,
}

impl LoadStats {
    /// Accumulate another load's counters.
    pub fn merge(&mut self, other: &LoadStats) {
        self.statements += other.statements;
        self.applications += other.applications;
        self.resource_types += other.resource_types;
        self.executions += other.executions;
        self.resources += other.resources;
        self.attributes += other.attributes;
        self.constraints += other.constraints;
        self.results += other.results;
    }
}

/// Options for resumable bulk loads ([`PTDataStore::load_ptdf_files_resumable`]).
#[derive(Debug, Clone, Copy)]
pub struct BulkLoadOptions {
    /// Statements applied per committed batch. Each batch commits the
    /// applied rows *and* the manifest watermark in one transaction, so a
    /// crash between batches loses at most one uncommitted batch.
    pub batch_statements: usize,
    /// Skip files (and statement prefixes) the manifest records as
    /// already loaded, provided the file content hash still matches.
    pub resume: bool,
}

impl Default for BulkLoadOptions {
    fn default() -> Self {
        BulkLoadOptions {
            batch_statements: 256,
            resume: false,
        }
    }
}

/// What a resumable bulk load did (see `docs/FAULTS.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Row counters for the statements actually applied this run.
    pub stats: LoadStats,
    /// Files (fully or partially) applied this run.
    pub files_loaded: usize,
    /// Files skipped entirely: manifest says done and the hash matches.
    pub files_skipped: usize,
    /// Batches committed this run.
    pub batches_committed: usize,
    /// Statements skipped because a previous run already committed them.
    pub resumed_statements: usize,
    /// Transient I/O retries the engine performed during this load.
    pub retries: u64,
}

/// One `load_manifest` row, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub path: String,
    pub content_hash: i64,
    pub watermark: usize,
    pub done: bool,
}

#[derive(Default)]
struct NameCache {
    applications: HashMap<String, i64>,
    types: HashMap<String, i64>,
    executions: HashMap<String, i64>,
    resources: HashMap<String, i64>,
    metrics: HashMap<String, i64>,
    tools: HashMap<String, i64>,
    /// resource id → (parent id, type id); lets closure maintenance walk
    /// parent chains without touching the database.
    resource_meta: HashMap<i64, (Option<i64>, i64)>,
}

struct IdGen {
    next: HashMap<&'static str, i64>,
}

impl IdGen {
    fn alloc(&mut self, seq: &'static str) -> i64 {
        let e = self.next.entry(seq).or_insert(1);
        let id = *e;
        *e += 1;
        id
    }
}

/// The PerfTrack data store.
///
/// # Threading
///
/// Every public method takes `&self` — including the write paths (loads,
/// deletes, checkpoint), which serialize internally on the storage
/// engine's writer lock. The type is `Send + Sync` (pinned by a
/// compile-time test in `tests/send_sync.rs`), so one store can be
/// shared across threads behind an `Arc`: readers run concurrently,
/// writers queue. The network service layer (`perftrack-server`) builds
/// directly on this contract — see `docs/SERVER.md`.
pub struct PTDataStore {
    db: Database,
    schema: Schema,
    registry: RwLock<TypeRegistry>,
    cache: RwLock<NameCache>,
    ids: Mutex<IdGen>,
}

impl PTDataStore {
    /// An in-memory store with the schema created and base types loaded.
    pub fn in_memory() -> Result<Self> {
        Self::from_db(Database::in_memory())
    }

    /// In-memory store with explicit engine options.
    pub fn in_memory_with(opts: DbOptions) -> Result<Self> {
        Self::from_db(Database::in_memory_with(opts))
    }

    /// Open (or create) a persistent store in `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::from_db(Database::open(dir)?)
    }

    /// Open with explicit engine options (retry policy, pool size, ...).
    pub fn open_with(dir: &Path, opts: DbOptions) -> Result<Self> {
        Self::from_db(Database::open_with(dir, opts)?)
    }

    /// Open against an explicit [`Vfs`](perftrack_store::Vfs) — the
    /// entry point fault-injection tests use to run a whole PerfTrack
    /// store on [`perftrack_store::FaultVfs`].
    pub fn open_with_vfs(
        dir: &Path,
        opts: DbOptions,
        vfs: &dyn perftrack_store::Vfs,
    ) -> Result<Self> {
        Self::from_db(Database::open_with_vfs(dir, opts, vfs)?)
    }

    fn from_db(db: Database) -> Result<Self> {
        let schema = Schema::create_or_resolve(&db)?;
        let store = PTDataStore {
            db,
            schema,
            registry: RwLock::new(TypeRegistry::empty()),
            cache: RwLock::new(NameCache::default()),
            ids: Mutex::new(IdGen {
                next: HashMap::new(),
            }),
        };
        // Seed the Figure 2 base types if absent. The freshness signal is
        // the row count, not table existence: a crash between the schema
        // DDL and this seed commit leaves `focus_framework` present but
        // empty, and the next open must finish the bootstrap. The seed is
        // one transaction, so it is all-or-nothing itself.
        if store.db.row_count(store.schema.focus_framework)? == 0 {
            store.bootstrap_base_types()?;
        }
        store.rebuild_runtime_state()?;
        Ok(store)
    }

    /// Load the Figure 2 base type set through the normal type-extension
    /// interface, exactly as the paper's initialization does.
    fn bootstrap_base_types(&self) -> Result<()> {
        let mut txn = self.db.begin();
        let mut by_path: HashMap<String, i64> = HashMap::new();
        for (i, path) in perftrack_model::types::BASE_HIERARCHIES
            .iter()
            .chain(perftrack_model::types::BASE_SINGLETON_TYPES)
            .enumerate()
        {
            let next_id = i as i64 + 1;
            let parent_id = path.rfind('/').map(|i| by_path[&path[..i]]);
            txn.insert(
                self.schema.focus_framework,
                vec![
                    Value::Int(next_id),
                    Value::Text(path.to_string()),
                    parent_id.map_or(Value::Null, Value::Int),
                ],
            )?;
            by_path.insert(path.to_string(), next_id);
        }
        txn.commit()?;
        Ok(())
    }

    /// Rebuild the in-memory registry, caches, and id counters from the
    /// database contents (called on open).
    fn rebuild_runtime_state(&self) -> Result<()> {
        let mut cache = NameCache::default();
        let mut registry = TypeRegistry::empty();
        let mut max: HashMap<&'static str, i64> = HashMap::new();
        let track = |seq: &'static str, id: i64, max: &mut HashMap<&'static str, i64>| {
            let e = max.entry(seq).or_insert(0);
            *e = (*e).max(id);
        };

        // Types, ordered by depth so parents precede children.
        let mut type_rows: Vec<Row> = self
            .db
            .scan(self.schema.focus_framework)?
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        type_rows.sort_by_key(|r| {
            r[col::focus_framework::TYPE_PATH]
                .as_text()
                .map(|s| s.split('/').count())
                .unwrap_or(0)
        });
        for r in &type_rows {
            let id = r[col::focus_framework::ID].as_int()?;
            let path = r[col::focus_framework::TYPE_PATH].as_text()?;
            registry.add_or_get(path).map_err(PtError::Model)?;
            cache.types.insert(path.to_string(), id);
            track("focus_framework", id, &mut max);
        }
        self.db.for_each_row(self.schema.application, |_, r| {
            if let (Ok(id), Ok(name)) = (
                r[col::application::ID].as_int(),
                r[col::application::NAME].as_text(),
            ) {
                cache.applications.insert(name.to_string(), id);
                track("application", id, &mut max);
            }
            true
        })?;
        self.db.for_each_row(self.schema.execution, |_, r| {
            if let (Ok(id), Ok(name)) = (
                r[col::execution::ID].as_int(),
                r[col::execution::NAME].as_text(),
            ) {
                cache.executions.insert(name.to_string(), id);
                track("execution", id, &mut max);
            }
            true
        })?;
        self.db.for_each_row(self.schema.resource_item, |_, r| {
            if let (Ok(id), Ok(name), Ok(type_id)) = (
                r[col::resource_item::ID].as_int(),
                r[col::resource_item::NAME].as_text(),
                r[col::resource_item::FOCUS_FRAMEWORK_ID].as_int(),
            ) {
                let parent = r[col::resource_item::PARENT_ID].as_int().ok();
                cache.resources.insert(name.to_string(), id);
                cache.resource_meta.insert(id, (parent, type_id));
                track("resource_item", id, &mut max);
            }
            true
        })?;
        self.db.for_each_row(self.schema.metric, |_, r| {
            if let (Ok(id), Ok(name)) =
                (r[col::metric::ID].as_int(), r[col::metric::NAME].as_text())
            {
                cache.metrics.insert(name.to_string(), id);
                track("metric", id, &mut max);
            }
            true
        })?;
        self.db.for_each_row(self.schema.performance_tool, |_, r| {
            if let (Ok(id), Ok(name)) = (
                r[col::performance_tool::ID].as_int(),
                r[col::performance_tool::NAME].as_text(),
            ) {
                cache.tools.insert(name.to_string(), id);
                track("performance_tool", id, &mut max);
            }
            true
        })?;
        self.db
            .for_each_row(self.schema.performance_result, |_, r| {
                if let Ok(id) = r[col::performance_result::ID].as_int() {
                    track("performance_result", id, &mut max);
                }
                true
            })?;
        self.db.for_each_row(self.schema.focus, |_, r| {
            if let Ok(id) = r[col::focus::ID].as_int() {
                track("focus", id, &mut max);
            }
            true
        })?;

        let mut ids = self.ids.lock();
        ids.next = max.into_iter().map(|(k, v)| (k, v + 1)).collect();
        drop(ids);
        *self.cache.write() = cache;
        *self.registry.write() = registry;
        Ok(())
    }

    // -- accessors ----------------------------------------------------------

    /// The underlying database (read-side use: benches and reports).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The resolved schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Snapshot of the type registry.
    pub fn registry(&self) -> TypeRegistry {
        self.registry.read().clone()
    }

    /// Approximate on-disk footprint (Table 1's size column).
    pub fn size_bytes(&self) -> Result<u64> {
        Ok(self.db.size_bytes()?)
    }

    /// Start a bulk loader holding one write transaction.
    pub fn begin_load(&self) -> Loader<'_> {
        Loader {
            store: self,
            txn: Some(self.db.begin()),
            registry: self.registry.read().clone(),
            overlay: NameCache::default(),
            stats: LoadStats::default(),
        }
    }

    // -- one-shot convenience wrappers ---------------------------------------

    /// Register an application.
    pub fn add_application(&self, name: &str) -> Result<i64> {
        let mut l = self.begin_load();
        let id = l.ensure_application(name)?;
        l.commit()?;
        Ok(id)
    }

    /// Register a resource type (extension interface).
    pub fn add_resource_type(&self, path: &str) -> Result<i64> {
        let mut l = self.begin_load();
        let id = l.ensure_type(path)?;
        l.commit()?;
        Ok(id)
    }

    /// Register an execution of an application.
    pub fn add_execution(&self, name: &str, application: &str) -> Result<i64> {
        let mut l = self.begin_load();
        let id = l.ensure_execution(name, application)?;
        l.commit()?;
        Ok(id)
    }

    /// Create a resource (parent must already exist for nested names).
    pub fn add_resource(&self, name: &str, type_path: &str) -> Result<i64> {
        let mut l = self.begin_load();
        let id = l.ensure_resource(name, type_path)?;
        l.commit()?;
        Ok(id)
    }

    /// Attach a string attribute to a resource.
    pub fn add_attribute(&self, resource: &str, attr: &str, value: &str) -> Result<()> {
        let mut l = self.begin_load();
        l.add_attribute(resource, attr, value, AttrType::String)?;
        l.commit()?;
        Ok(())
    }

    /// Record a resource constraint (resource-valued attribute).
    pub fn add_constraint(&self, first: &str, second: &str) -> Result<()> {
        let mut l = self.begin_load();
        l.add_constraint(first, second)?;
        l.commit()?;
        Ok(())
    }

    /// Store one performance result.
    pub fn add_performance_result(&self, result: &PerformanceResult) -> Result<i64> {
        let mut l = self.begin_load();
        let id = l.add_performance_result(result)?;
        l.commit()?;
        Ok(id)
    }

    // -- PTdf import/export --------------------------------------------------

    /// Load a parsed PTdf document in a single transaction.
    pub fn load_statements(&self, stmts: &[PtdfStatement]) -> Result<LoadStats> {
        let mut l = self.begin_load();
        for s in stmts {
            l.apply(s)?;
        }
        l.commit()
    }

    /// Parse and load PTdf text.
    pub fn load_ptdf_str(&self, text: &str) -> Result<LoadStats> {
        let stmts = perftrack_ptdf::parse_str(text)?;
        self.load_statements(&stmts)
    }

    /// Parse and load PTdf text at most once per idempotency `token`.
    ///
    /// If a previous load already committed under `token`, nothing is
    /// applied and the recorded counters come back with the second
    /// element `true` ("replayed"). Otherwise the statements and the
    /// `load_token` row commit in one transaction, so after a crash or a
    /// lost response either everything *and* the token are durable or
    /// neither is — a network client may replay the request safely
    /// (the retry-safe write contract in `docs/SERVER.md`). An empty
    /// token means "no dedup" and behaves like [`Self::load_ptdf_str`].
    pub fn load_ptdf_str_dedup(&self, text: &str, token: &str) -> Result<(LoadStats, bool)> {
        if token.is_empty() {
            return Ok((self.load_ptdf_str(text)?, false));
        }
        if let Some(stats) = self.load_token_entry(token)? {
            return Ok((stats, true));
        }
        let stmts = perftrack_ptdf::parse_str(text)?;
        let mut l = self.begin_load();
        for s in &stmts {
            l.apply(s)?;
        }
        l.set_load_token(token)?;
        let stats = l.commit()?;
        Ok((stats, false))
    }

    /// Load one PTdf file.
    pub fn load_ptdf_file(&self, path: &Path) -> Result<LoadStats> {
        let text = std::fs::read_to_string(path)?;
        self.load_ptdf_str(&text)
    }

    /// Load many PTdf files: parsing fans out across `threads` worker
    /// threads, application stays serial (single-writer engine). This is
    /// the optimization the paper's §4.2 flags data-load time for.
    pub fn load_ptdf_files_parallel(
        &self,
        paths: &[std::path::PathBuf],
        threads: usize,
    ) -> Result<LoadStats> {
        let texts: Vec<String> = paths
            .iter()
            .map(std::fs::read_to_string)
            .collect::<std::io::Result<_>>()?;
        self.load_ptdf_texts_parallel(&texts, threads)
    }

    /// Load PTdf files through the crash-safe manifest: statements are
    /// applied in bounded batches, and every batch commit also advances
    /// the file's `load_manifest` watermark *in the same transaction*.
    /// Killed at any point and reopened, a `resume: true` run skips
    /// exactly the committed prefix — the final row counts equal an
    /// uninterrupted load's (see `docs/FAULTS.md` for the contract).
    pub fn load_ptdf_files_resumable(
        &self,
        paths: &[std::path::PathBuf],
        opts: &BulkLoadOptions,
    ) -> Result<LoadReport> {
        let retries_before = self.db.metrics().io.retries;
        let mut report = LoadReport::default();
        for path in paths {
            let text = std::fs::read_to_string(path)?;
            self.load_file_resumable(&path.to_string_lossy(), &text, opts, &mut report)?;
        }
        report.retries = self.db.metrics().io.retries - retries_before;
        Ok(report)
    }

    fn load_file_resumable(
        &self,
        key: &str,
        text: &str,
        opts: &BulkLoadOptions,
        report: &mut LoadReport,
    ) -> Result<()> {
        let hash = perftrack_store::wal::crc32(text.as_bytes()) as i64;
        let batch = opts.batch_statements.max(1);
        let mut start = 0usize;
        if let Some(entry) = self.manifest_entry(key)? {
            if opts.resume && entry.content_hash == hash {
                if entry.done {
                    report.files_skipped += 1;
                    return Ok(());
                }
                start = entry.watermark;
                report.resumed_statements += start;
            }
            // Hash mismatch (file edited since) or resume off: reload
            // from the top; the manifest row is rewritten batch by batch.
        }
        let stmts = perftrack_ptdf::parse_str(text)?;
        let total = stmts.len();
        let mut pos = start.min(total);
        report.resumed_statements -= start.saturating_sub(total);
        loop {
            let end = (pos + batch).min(total);
            let mut l = self.begin_load();
            for s in &stmts[pos..end] {
                l.apply(s)?;
            }
            l.set_manifest(key, hash, end as i64, end == total)?;
            let stats = l.commit()?;
            report.stats.merge(&stats);
            report.batches_committed += 1;
            pos = end;
            if pos >= total {
                break;
            }
        }
        report.files_loaded += 1;
        Ok(())
    }

    /// The manifest row for `path`, if a load ever recorded one.
    pub fn manifest_entry(&self, path: &str) -> Result<Option<ManifestEntry>> {
        let idx = self.db.index_id("load_manifest_path")?;
        let rids = self
            .db
            .index_lookup(idx, &[Value::Text(path.to_string())])?;
        match rids.first() {
            Some(&rid) => {
                let row = self.db.get(self.schema.load_manifest, rid)?;
                Ok(Some(decode_manifest(&row)))
            }
            None => Ok(None),
        }
    }

    /// The counters recorded under idempotency `token`, if a load ever
    /// committed with it.
    pub fn load_token_entry(&self, token: &str) -> Result<Option<LoadStats>> {
        let idx = self.db.index_id("load_token_token")?;
        let rids = self
            .db
            .index_lookup(idx, &[Value::Text(token.to_string())])?;
        match rids.first() {
            Some(&rid) => {
                let row = self.db.get(self.schema.load_token, rid)?;
                Ok(Some(decode_load_token(&row)))
            }
            None => Ok(None),
        }
    }

    /// Every manifest row, sorted by path (`pt load` status reporting
    /// and tests).
    pub fn manifest(&self) -> Result<Vec<ManifestEntry>> {
        let mut out = Vec::new();
        self.db.for_each_row(self.schema.load_manifest, |_, r| {
            out.push(decode_manifest(r));
            true
        })?;
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    /// True once the engine has entered read-only degraded mode (writes
    /// rejected; see `docs/FAULTS.md`).
    pub fn is_degraded(&self) -> bool {
        self.db.is_degraded()
    }

    /// Parallel-parse already-read PTdf documents, then apply serially.
    pub fn load_ptdf_texts_parallel(&self, texts: &[String], threads: usize) -> Result<LoadStats> {
        let threads = threads.max(1).min(texts.len().max(1));
        let chunk = texts.len().div_ceil(threads);
        let parsed: Vec<Result<Vec<Vec<PtdfStatement>>>> = crossbeam::thread::scope(|s| {
            texts
                .chunks(chunk.max(1))
                .map(|part| {
                    s.spawn(move |_| {
                        part.iter()
                            .map(|t| perftrack_ptdf::parse_str(t).map_err(PtError::Ptdf))
                            .collect::<Result<Vec<_>>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
        .expect("parser thread panicked");
        let mut stats = LoadStats::default();
        for group in parsed {
            for stmts in group? {
                stats.merge(&self.load_statements(&stmts)?);
            }
        }
        Ok(stats)
    }

    /// Export the complete store as PTdf statements (inverse of load).
    pub fn export_ptdf(&self) -> Result<Vec<PtdfStatement>> {
        let mut out = Vec::new();
        // Types beyond the base set.
        let base: std::collections::HashSet<&str> = perftrack_model::types::BASE_HIERARCHIES
            .iter()
            .chain(perftrack_model::types::BASE_SINGLETON_TYPES)
            .copied()
            .collect();
        let registry = self.registry.read();
        for tp in registry.all() {
            if !base.contains(tp.as_str()) {
                out.push(PtdfStatement::ResourceType {
                    type_path: tp.as_str().to_string(),
                });
            }
        }
        drop(registry);
        // Applications.
        let mut apps: Vec<(i64, String)> = Vec::new();
        self.db.for_each_row(self.schema.application, |_, r| {
            apps.push((
                r[col::application::ID].as_int().unwrap_or(0),
                r[col::application::NAME]
                    .as_text()
                    .unwrap_or("")
                    .to_string(),
            ));
            true
        })?;
        apps.sort();
        let app_by_id: HashMap<i64, String> = apps.iter().cloned().collect();
        for (_, name) in &apps {
            out.push(PtdfStatement::Application { name: name.clone() });
        }
        // Executions.
        let mut execs: Vec<(i64, String, i64)> = Vec::new();
        self.db.for_each_row(self.schema.execution, |_, r| {
            execs.push((
                r[col::execution::ID].as_int().unwrap_or(0),
                r[col::execution::NAME].as_text().unwrap_or("").to_string(),
                r[col::execution::APPLICATION_ID].as_int().unwrap_or(0),
            ));
            true
        })?;
        execs.sort();
        let exec_by_id: HashMap<i64, String> =
            execs.iter().map(|(i, n, _)| (*i, n.clone())).collect();
        for (_, name, app_id) in &execs {
            out.push(PtdfStatement::Execution {
                name: name.clone(),
                application: app_by_id.get(app_id).cloned().unwrap_or_default(),
            });
        }
        // Resources, parents before children (sort by name depth then name).
        let mut resources: Vec<ResourceRecord> = Vec::new();
        self.db.for_each_row(self.schema.resource_item, |_, r| {
            resources.push(decode_resource(r));
            true
        })?;
        resources.sort_by(|a, b| {
            a.name
                .matches('/')
                .count()
                .cmp(&b.name.matches('/').count())
                .then_with(|| a.name.cmp(&b.name))
        });
        let type_by_id: HashMap<i64, String> = {
            let cache = self.cache.read();
            cache.types.iter().map(|(k, v)| (*v, k.clone())).collect()
        };
        let res_by_id: HashMap<i64, String> =
            resources.iter().map(|r| (r.id, r.name.clone())).collect();
        for r in &resources {
            out.push(PtdfStatement::Resource {
                name: r.name.clone(),
                type_path: type_by_id.get(&r.type_id).cloned().unwrap_or_default(),
                execution: None,
            });
        }
        // Attributes.
        self.db
            .for_each_row(self.schema.resource_attribute, |_, r| {
                let rid = r[col::resource_attribute::RESOURCE_ID]
                    .as_int()
                    .unwrap_or(0);
                if let Some(name) = res_by_id.get(&rid) {
                    out.push(PtdfStatement::ResourceAttribute {
                        resource: name.clone(),
                        attribute: r[col::resource_attribute::NAME]
                            .as_text()
                            .unwrap_or("")
                            .to_string(),
                        value: r[col::resource_attribute::VALUE]
                            .as_text()
                            .unwrap_or("")
                            .to_string(),
                        attr_type: AttrType::String,
                    });
                }
                true
            })?;
        // Constraints.
        self.db
            .for_each_row(self.schema.resource_constraint, |_, r| {
                let a = r[col::resource_constraint::RESOURCE1_ID]
                    .as_int()
                    .unwrap_or(0);
                let b = r[col::resource_constraint::RESOURCE2_ID]
                    .as_int()
                    .unwrap_or(0);
                if let (Some(an), Some(bn)) = (res_by_id.get(&a), res_by_id.get(&b)) {
                    out.push(PtdfStatement::ResourceConstraint {
                        first: an.clone(),
                        second: bn.clone(),
                    });
                }
                true
            })?;
        // Performance results with their foci.
        let metric_by_id: HashMap<i64, String> = {
            let cache = self.cache.read();
            cache.metrics.iter().map(|(k, v)| (*v, k.clone())).collect()
        };
        let tool_by_id: HashMap<i64, String> = {
            let cache = self.cache.read();
            cache.tools.iter().map(|(k, v)| (*v, k.clone())).collect()
        };
        // focus id -> (result id, role); then group resources per focus.
        let mut focus_info: HashMap<i64, (i64, String)> = HashMap::new();
        self.db.for_each_row(self.schema.focus, |_, r| {
            focus_info.insert(
                r[col::focus::ID].as_int().unwrap_or(0),
                (
                    r[col::focus::RESULT_ID].as_int().unwrap_or(0),
                    r[col::focus::FOCUS_TYPE]
                        .as_text()
                        .unwrap_or("primary")
                        .to_string(),
                ),
            );
            true
        })?;
        let mut focus_resources: HashMap<i64, Vec<String>> = HashMap::new();
        self.db
            .for_each_row(self.schema.focus_has_resource, |_, r| {
                let fid = r[col::focus_has_resource::FOCUS_ID].as_int().unwrap_or(0);
                let rid = r[col::focus_has_resource::RESOURCE_ID]
                    .as_int()
                    .unwrap_or(0);
                if let Some(name) = res_by_id.get(&rid) {
                    focus_resources.entry(fid).or_default().push(name.clone());
                }
                true
            })?;
        let mut result_sets: HashMap<i64, Vec<perftrack_ptdf::PtdfResourceSet>> = HashMap::new();
        let mut focus_ids: Vec<i64> = focus_info.keys().copied().collect();
        focus_ids.sort_unstable();
        for fid in focus_ids {
            let (result_id, role) = &focus_info[&fid];
            result_sets
                .entry(*result_id)
                .or_default()
                .push(perftrack_ptdf::PtdfResourceSet {
                    resources: focus_resources.remove(&fid).unwrap_or_default(),
                    set_type: role.clone(),
                });
        }
        // Stream the result rows out of the pool, taking ownership of each
        // decoded row instead of cloning it out of a materialized scan.
        let mut result_rows: Vec<Row> = self
            .db
            .scan_iter(self.schema.performance_result)?
            .map(|item| item.map(|(_, row)| row))
            .collect::<perftrack_store::StoreResult<_>>()?;
        result_rows.sort_by_key(|r| r[col::performance_result::ID].as_int().unwrap_or(0));
        for r in result_rows {
            let id = r[col::performance_result::ID].as_int()?;
            out.push(PtdfStatement::PerfResult {
                execution: exec_by_id
                    .get(&r[col::performance_result::EXECUTION_ID].as_int()?)
                    .cloned()
                    .unwrap_or_default(),
                resource_sets: result_sets.remove(&id).unwrap_or_default(),
                tool: tool_by_id
                    .get(&r[col::performance_result::TOOL_ID].as_int()?)
                    .cloned()
                    .unwrap_or_default(),
                metric: metric_by_id
                    .get(&r[col::performance_result::METRIC_ID].as_int()?)
                    .cloned()
                    .unwrap_or_default(),
                value: r[col::performance_result::VALUE].as_real()?,
                units: r[col::performance_result::UNITS].as_text()?.to_string(),
            });
        }
        Ok(out)
    }

    // -- lookups -------------------------------------------------------------

    /// Resource id by full name.
    pub fn resource_id(&self, name: &str) -> Option<i64> {
        self.cache.read().resources.get(name).copied()
    }

    /// Resource record by full name.
    pub fn resource_by_name(&self, name: &str) -> Result<Option<ResourceRecord>> {
        let idx = self.db.index_id("resource_item_name")?;
        let rids = self
            .db
            .index_lookup(idx, &[Value::Text(name.to_string())])?;
        match rids.first() {
            Some(&rid) => {
                let row = self.db.get(self.schema.resource_item, rid)?;
                Ok(Some(decode_resource(&row)))
            }
            None => Ok(None),
        }
    }

    /// Resource record by id.
    pub fn resource_by_id(&self, id: i64) -> Result<Option<ResourceRecord>> {
        let idx = self.db.index_id("resource_item_id")?;
        let rids = self.db.index_lookup(idx, &[Value::Int(id)])?;
        match rids.first() {
            Some(&rid) => {
                let row = self.db.get(self.schema.resource_item, rid)?;
                Ok(Some(decode_resource(&row)))
            }
            None => Ok(None),
        }
    }

    /// Attributes of a resource as `(name, value, attr_type)` tuples.
    pub fn attributes_of(&self, resource_id: i64) -> Result<Vec<(String, String, String)>> {
        let idx = self.db.index_id("resource_attribute_rid")?;
        let rids = self.db.index_lookup(idx, &[Value::Int(resource_id)])?;
        let mut out = Vec::with_capacity(rids.len());
        for rid in rids {
            let row = self.db.get(self.schema.resource_attribute, rid)?;
            out.push((
                row[col::resource_attribute::NAME].as_text()?.to_string(),
                row[col::resource_attribute::VALUE].as_text()?.to_string(),
                row[col::resource_attribute::ATTR_TYPE]
                    .as_text()?
                    .to_string(),
            ));
        }
        out.sort();
        Ok(out)
    }

    /// Type id by path.
    pub fn type_id(&self, path: &str) -> Option<i64> {
        self.cache.read().types.get(path).copied()
    }

    /// Execution id by name.
    pub fn execution_id(&self, name: &str) -> Option<i64> {
        self.cache.read().executions.get(name).copied()
    }

    /// Metric id by name.
    pub fn metric_id(&self, name: &str) -> Option<i64> {
        self.cache.read().metrics.get(name).copied()
    }

    /// All executions as `(id, name)`.
    pub fn executions(&self) -> Vec<(i64, String)> {
        let cache = self.cache.read();
        let mut v: Vec<(i64, String)> = cache
            .executions
            .iter()
            .map(|(n, i)| (*i, n.clone()))
            .collect();
        v.sort();
        v
    }

    /// All metric names.
    pub fn metrics(&self) -> Vec<String> {
        let cache = self.cache.read();
        let mut v: Vec<String> = cache.metrics.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total number of stored performance results.
    pub fn result_count(&self) -> Result<usize> {
        Ok(self.db.row_count(self.schema.performance_result)?)
    }

    /// Total number of stored resources.
    pub fn resource_count(&self) -> Result<usize> {
        Ok(self.db.row_count(self.schema.resource_item)?)
    }

    /// Force a checkpoint (flush + catalog + WAL truncate).
    pub fn checkpoint(&self) -> Result<()> {
        Ok(self.db.checkpoint()?)
    }

    /// Whole-store integrity verification: the storage engine's structural
    /// fsck (pages, B+trees, WAL, catalog) plus PerfTrack's logical checks
    /// (closure-table consistency, referential integrity). `deep` adds the
    /// engine's index-entry ↔ row bijection checks. See `docs/FSCK.md`.
    ///
    /// Takes the writer lock for the structural pass — do not call while a
    /// [`Txn`](perftrack_store::Txn) or [`Loader`] is open on this thread.
    pub fn fsck(&self, deep: bool) -> Result<crate::fsck::FsckReport> {
        crate::fsck::verify_store(self, deep)
    }

    /// Delete an execution and everything hanging off it: its performance
    /// results, their foci and focus-resource links, and the execution row
    /// itself. Resources are left in place (they are shared across
    /// executions by design). Runs in one transaction; returns
    /// `(results, foci, links)` removed.
    pub fn delete_execution(&self, name: &str) -> Result<(usize, usize, usize)> {
        let exec_id = self
            .cache
            .read()
            .executions
            .get(name)
            .copied()
            .ok_or_else(|| PtError::NotFound(format!("execution {name}")))?;
        let mut txn = self.db.begin();
        let mut n_results = 0usize;
        let mut n_foci = 0usize;
        let mut n_links = 0usize;
        // Results of this execution.
        let result_idx = self.db.index_id("performance_result_exec")?;
        let focus_idx = self.db.index_id("focus_result")?;
        let fhr_idx = self.db.index_id("fhr_focus")?;
        for result_rowid in self.db.index_lookup(result_idx, &[Value::Int(exec_id)])? {
            let result_row = self.db.get(self.schema.performance_result, result_rowid)?;
            let result_id = result_row[col::performance_result::ID].as_int()?;
            for focus_rowid in self.db.index_lookup(focus_idx, &[Value::Int(result_id)])? {
                let focus_row = self.db.get(self.schema.focus, focus_rowid)?;
                let focus_id = focus_row[col::focus::ID].as_int()?;
                for link_rowid in self.db.index_lookup(fhr_idx, &[Value::Int(focus_id)])? {
                    txn.delete(self.schema.focus_has_resource, link_rowid)?;
                    n_links += 1;
                }
                txn.delete(self.schema.focus, focus_rowid)?;
                n_foci += 1;
            }
            txn.delete(self.schema.performance_result, result_rowid)?;
            n_results += 1;
        }
        // The execution row itself.
        let exec_idx = self.db.index_id("execution_id")?;
        for rowid in self.db.index_lookup(exec_idx, &[Value::Int(exec_id)])? {
            txn.delete(self.schema.execution, rowid)?;
        }
        txn.commit()?;
        self.cache.write().executions.remove(name);
        // Reclaim fragmented page space in the touched tables.
        self.db.compact_table(self.schema.performance_result)?;
        self.db.compact_table(self.schema.focus)?;
        self.db.compact_table(self.schema.focus_has_resource)?;
        Ok((n_results, n_foci, n_links))
    }
}

fn decode_manifest(row: &Row) -> ManifestEntry {
    ManifestEntry {
        path: row[col::load_manifest::PATH]
            .as_text()
            .unwrap_or("")
            .to_string(),
        content_hash: row[col::load_manifest::CONTENT_HASH].as_int().unwrap_or(0),
        watermark: row[col::load_manifest::WATERMARK].as_int().unwrap_or(0) as usize,
        done: row[col::load_manifest::DONE].as_int().unwrap_or(0) != 0,
    }
}

fn decode_load_token(row: &Row) -> LoadStats {
    let int = |i: usize| row.get(i).and_then(|v| v.as_int().ok()).unwrap_or(0) as usize;
    LoadStats {
        statements: int(col::load_token::STATEMENTS),
        applications: int(col::load_token::APPLICATIONS),
        resource_types: int(col::load_token::RESOURCE_TYPES),
        executions: int(col::load_token::EXECUTIONS),
        resources: int(col::load_token::RESOURCES),
        attributes: int(col::load_token::ATTRIBUTES),
        constraints: int(col::load_token::CONSTRAINTS),
        results: int(col::load_token::RESULTS),
    }
}

pub(crate) fn decode_resource(row: &Row) -> ResourceRecord {
    ResourceRecord {
        id: row[col::resource_item::ID].as_int().unwrap_or(0),
        name: row[col::resource_item::NAME]
            .as_text()
            .unwrap_or("")
            .to_string(),
        base_name: row[col::resource_item::BASE_NAME]
            .as_text()
            .unwrap_or("")
            .to_string(),
        type_id: row[col::resource_item::FOCUS_FRAMEWORK_ID]
            .as_int()
            .unwrap_or(0),
        parent_id: row[col::resource_item::PARENT_ID].as_int().ok(),
    }
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

/// Bulk loader holding one write transaction. Name→id caches added during
/// the load live in an overlay that is merged into the store's global
/// cache only on commit, so a rolled-back load leaves no stale entries.
pub struct Loader<'s> {
    store: &'s PTDataStore,
    txn: Option<perftrack_store::Txn<'s>>,
    registry: TypeRegistry,
    overlay: NameCache,
    stats: LoadStats,
}

impl<'s> Loader<'s> {
    fn txn(&mut self) -> &mut perftrack_store::Txn<'s> {
        self.txn.as_mut().expect("loader already finished")
    }

    fn lookup(&self, pick: impl Fn(&NameCache) -> Option<i64>) -> Option<i64> {
        pick(&self.overlay).or_else(|| pick(&self.store.cache.read()))
    }

    /// Apply one PTdf statement.
    pub fn apply(&mut self, stmt: &PtdfStatement) -> Result<()> {
        self.stats.statements += 1;
        match stmt {
            PtdfStatement::Application { name } => {
                self.ensure_application(name)?;
            }
            PtdfStatement::ResourceType { type_path } => {
                self.ensure_type(type_path)?;
            }
            PtdfStatement::Execution { name, application } => {
                self.ensure_execution(name, application)?;
            }
            PtdfStatement::Resource {
                name, type_path, ..
            } => {
                self.ensure_resource(name, type_path)?;
            }
            PtdfStatement::ResourceAttribute {
                resource,
                attribute,
                value,
                attr_type,
            } => {
                if *attr_type == AttrType::Resource {
                    self.add_constraint_named(resource, value, attribute)?;
                } else {
                    self.add_attribute(resource, attribute, value, *attr_type)?;
                }
            }
            PtdfStatement::PerfResult {
                execution,
                resource_sets,
                tool,
                metric,
                value,
                units,
            } => {
                let sets = resource_sets
                    .iter()
                    .map(|s| {
                        Ok(perftrack_model::ResourceSet {
                            role: ContextRole::parse(&s.set_type).ok_or_else(|| {
                                PtError::Invalid(format!("bad resource set type {:?}", s.set_type))
                            })?,
                            resources: s
                                .resources
                                .iter()
                                .map(|r| ResourceName::new(r).map_err(PtError::Model))
                                .collect::<Result<Vec<_>>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let pr = PerformanceResult {
                    execution: execution.clone(),
                    metric: metric.clone(),
                    value: *value,
                    units: units.clone(),
                    tool: tool.clone(),
                    resource_sets: sets,
                };
                self.add_performance_result(&pr)?;
            }
            PtdfStatement::ResourceConstraint { first, second } => {
                self.add_constraint(first, second)?;
            }
        }
        Ok(())
    }

    /// Intern an application by name.
    pub fn ensure_application(&mut self, name: &str) -> Result<i64> {
        if let Some(id) = self.lookup(|c| c.applications.get(name).copied()) {
            return Ok(id);
        }
        let id = self.store.ids.lock().alloc("application");
        let table = self.store.schema.application;
        self.txn()
            .insert(table, vec![Value::Int(id), Value::Text(name.to_string())])?;
        self.overlay.applications.insert(name.to_string(), id);
        self.stats.applications += 1;
        Ok(id)
    }

    /// Register a resource type; parents must exist (base set is
    /// preloaded).
    pub fn ensure_type(&mut self, path: &str) -> Result<i64> {
        if let Some(id) = self.lookup(|c| c.types.get(path).copied()) {
            return Ok(id);
        }
        self.registry.add(path).map_err(PtError::Model)?;
        let parent_id = match path.rfind('/') {
            Some(i) => Some(
                self.lookup(|c| c.types.get(&path[..i]).copied())
                    .ok_or_else(|| PtError::Model(ModelError::UnknownParentType(path.into())))?,
            ),
            None => None,
        };
        let id = self.store.ids.lock().alloc("focus_framework");
        let table = self.store.schema.focus_framework;
        self.txn().insert(
            table,
            vec![
                Value::Int(id),
                Value::Text(path.to_string()),
                parent_id.map_or(Value::Null, Value::Int),
            ],
        )?;
        self.overlay.types.insert(path.to_string(), id);
        self.stats.resource_types += 1;
        Ok(id)
    }

    /// Intern an execution (creating its application if needed).
    pub fn ensure_execution(&mut self, name: &str, application: &str) -> Result<i64> {
        if let Some(id) = self.lookup(|c| c.executions.get(name).copied()) {
            return Ok(id);
        }
        let app_id = self.ensure_application(application)?;
        let id = self.store.ids.lock().alloc("execution");
        let table = self.store.schema.execution;
        self.txn().insert(
            table,
            vec![
                Value::Int(id),
                Value::Text(name.to_string()),
                Value::Int(app_id),
            ],
        )?;
        self.overlay.executions.insert(name.to_string(), id);
        self.stats.executions += 1;
        Ok(id)
    }

    /// Create (or return) a resource, enforcing the model rules and
    /// maintaining the ancestor/descendant closure tables.
    pub fn ensure_resource(&mut self, name: &str, type_path: &str) -> Result<i64> {
        if let Some(id) = self.lookup(|c| c.resources.get(name).copied()) {
            // Type agreement check for idempotent re-adds.
            let type_id = self
                .lookup(|c| c.types.get(type_path).copied())
                .ok_or_else(|| PtError::Model(ModelError::UnknownType(type_path.into())))?;
            let meta = self
                .lookup_meta(id)
                .ok_or_else(|| PtError::Invalid(format!("resource {name} missing meta")))?;
            if meta.1 != type_id {
                return Err(PtError::Model(ModelError::TypeMismatch {
                    resource: name.to_string(),
                    detail: format!("exists with a different type than {type_path}"),
                }));
            }
            return Ok(id);
        }
        let rn = ResourceName::new(name).map_err(PtError::Model)?;
        let type_id = self
            .lookup(|c| c.types.get(type_path).copied())
            .ok_or_else(|| PtError::Model(ModelError::UnknownType(type_path.into())))?;
        // Validate hierarchy agreement using the registry.
        let tp = self.registry.get(type_path).map_err(PtError::Model)?;
        let parent_id = match rn.parent() {
            Some(parent_name) => {
                let pid = self
                    .lookup(|c| c.resources.get(parent_name.as_str()).copied())
                    .ok_or_else(|| {
                        PtError::Model(ModelError::UnknownResource(
                            parent_name.as_str().to_string(),
                        ))
                    })?;
                let (_, parent_type_id) = self
                    .lookup_meta(pid)
                    .ok_or_else(|| PtError::Invalid("missing parent meta".into()))?;
                let expected = tp.parent().ok_or_else(|| {
                    PtError::Model(ModelError::TypeMismatch {
                        resource: name.to_string(),
                        detail: format!("top-level type {type_path} cannot name a nested resource"),
                    })
                })?;
                let expected_id = self
                    .lookup(|c| c.types.get(expected.as_str()).copied())
                    .ok_or_else(|| PtError::Model(ModelError::UnknownType(expected.to_string())))?;
                if parent_type_id != expected_id {
                    return Err(PtError::Model(ModelError::TypeMismatch {
                        resource: name.to_string(),
                        detail: format!("parent type does not match {expected}"),
                    }));
                }
                Some(pid)
            }
            None => {
                if tp.depth() != 1 {
                    return Err(PtError::Model(ModelError::TypeMismatch {
                        resource: name.to_string(),
                        detail: format!("nested type {type_path} requires a parent resource"),
                    }));
                }
                None
            }
        };
        let id = self.store.ids.lock().alloc("resource_item");
        let table = self.store.schema.resource_item;
        self.txn().insert(
            table,
            vec![
                Value::Int(id),
                Value::Text(name.to_string()),
                Value::Text(rn.base_name().to_string()),
                Value::Int(type_id),
                parent_id.map_or(Value::Null, Value::Int),
            ],
        )?;
        // Closure-table maintenance: walk the parent chain through caches.
        let mut ancestors = Vec::new();
        let mut cur = parent_id;
        while let Some(a) = cur {
            ancestors.push(a);
            cur = self.lookup_meta(a).and_then(|(p, _)| p);
        }
        let rha = self.store.schema.resource_has_ancestor;
        let rhd = self.store.schema.resource_has_descendant;
        for a in &ancestors {
            self.txn()
                .insert(rha, vec![Value::Int(id), Value::Int(*a)])?;
            self.txn()
                .insert(rhd, vec![Value::Int(*a), Value::Int(id)])?;
        }
        self.overlay.resources.insert(name.to_string(), id);
        self.overlay.resource_meta.insert(id, (parent_id, type_id));
        self.stats.resources += 1;
        Ok(id)
    }

    fn lookup_meta(&self, id: i64) -> Option<(Option<i64>, i64)> {
        self.overlay
            .resource_meta
            .get(&id)
            .copied()
            .or_else(|| self.store.cache.read().resource_meta.get(&id).copied())
    }

    /// Attach a string attribute to a resource.
    pub fn add_attribute(
        &mut self,
        resource: &str,
        attr: &str,
        value: &str,
        attr_type: AttrType,
    ) -> Result<()> {
        let rid = self
            .lookup(|c| c.resources.get(resource).copied())
            .ok_or_else(|| PtError::Model(ModelError::UnknownResource(resource.into())))?;
        let table = self.store.schema.resource_attribute;
        self.txn().insert(
            table,
            vec![
                Value::Int(rid),
                Value::Text(attr.to_string()),
                Value::Text(value.to_string()),
                Value::Text(attr_type.keyword().to_string()),
            ],
        )?;
        self.stats.attributes += 1;
        Ok(())
    }

    /// Record a resource constraint between two existing resources.
    pub fn add_constraint(&mut self, first: &str, second: &str) -> Result<()> {
        self.add_constraint_named(first, second, "")
    }

    fn add_constraint_named(&mut self, first: &str, second: &str, attr: &str) -> Result<()> {
        let a = self
            .lookup(|c| c.resources.get(first).copied())
            .ok_or_else(|| PtError::Model(ModelError::UnknownResource(first.into())))?;
        let b = self
            .lookup(|c| c.resources.get(second).copied())
            .ok_or_else(|| PtError::Model(ModelError::UnknownResource(second.into())))?;
        let table = self.store.schema.resource_constraint;
        self.txn().insert(
            table,
            vec![Value::Int(a), Value::Int(b), Value::Text(attr.to_string())],
        )?;
        self.stats.constraints += 1;
        Ok(())
    }

    fn ensure_metric(&mut self, name: &str) -> Result<i64> {
        if let Some(id) = self.lookup(|c| c.metrics.get(name).copied()) {
            return Ok(id);
        }
        let id = self.store.ids.lock().alloc("metric");
        let table = self.store.schema.metric;
        self.txn()
            .insert(table, vec![Value::Int(id), Value::Text(name.to_string())])?;
        self.overlay.metrics.insert(name.to_string(), id);
        Ok(id)
    }

    fn ensure_tool(&mut self, name: &str) -> Result<i64> {
        if let Some(id) = self.lookup(|c| c.tools.get(name).copied()) {
            return Ok(id);
        }
        let id = self.store.ids.lock().alloc("performance_tool");
        let table = self.store.schema.performance_tool;
        self.txn()
            .insert(table, vec![Value::Int(id), Value::Text(name.to_string())])?;
        self.overlay.tools.insert(name.to_string(), id);
        Ok(id)
    }

    /// Store one performance result (execution and all context resources
    /// must already exist).
    pub fn add_performance_result(&mut self, result: &PerformanceResult) -> Result<i64> {
        if result.resource_sets.is_empty() {
            return Err(PtError::Invalid(
                "performance result needs at least one resource set".into(),
            ));
        }
        let exec_id = self
            .lookup(|c| c.executions.get(&result.execution).copied())
            .ok_or_else(|| PtError::NotFound(format!("execution {}", result.execution)))?;
        let metric_id = self.ensure_metric(&result.metric)?;
        let tool_id = self.ensure_tool(&result.tool)?;
        // Resolve every resource up front so failures leave no partial foci.
        let mut resolved: Vec<(ContextRole, Vec<i64>)> =
            Vec::with_capacity(result.resource_sets.len());
        for set in &result.resource_sets {
            let ids = set
                .resources
                .iter()
                .map(|r| {
                    self.lookup(|c| c.resources.get(r.as_str()).copied())
                        .ok_or_else(|| {
                            PtError::Model(ModelError::UnknownResource(r.as_str().to_string()))
                        })
                })
                .collect::<Result<Vec<_>>>()?;
            resolved.push((set.role, ids));
        }
        let id = self.store.ids.lock().alloc("performance_result");
        let table = self.store.schema.performance_result;
        self.txn().insert(
            table,
            vec![
                Value::Int(id),
                Value::Int(exec_id),
                Value::Int(metric_id),
                Value::Int(tool_id),
                Value::Real(result.value),
                Value::Text(result.units.clone()),
            ],
        )?;
        for (role, rids) in resolved {
            let focus_id = self.store.ids.lock().alloc("focus");
            let ftable = self.store.schema.focus;
            self.txn().insert(
                ftable,
                vec![
                    Value::Int(focus_id),
                    Value::Int(id),
                    Value::Text(role.name().to_string()),
                ],
            )?;
            let fhr = self.store.schema.focus_has_resource;
            for rid in rids {
                self.txn()
                    .insert(fhr, vec![Value::Int(focus_id), Value::Int(rid)])?;
            }
        }
        self.stats.results += 1;
        Ok(id)
    }

    /// Record (or advance) the manifest row for `path` inside this
    /// load's transaction, so the watermark becomes durable atomically
    /// with the rows it covers.
    pub fn set_manifest(
        &mut self,
        path: &str,
        hash: i64,
        watermark: i64,
        done: bool,
    ) -> Result<()> {
        let table = self.store.schema.load_manifest;
        let idx = self.store.db.index_id("load_manifest_path")?;
        let existing = self
            .store
            .db
            .index_lookup(idx, &[Value::Text(path.to_string())])?;
        let row = vec![
            Value::Text(path.to_string()),
            Value::Int(hash),
            Value::Int(watermark),
            Value::Int(i64::from(done)),
        ];
        match existing.first() {
            Some(&rid) => self.txn().update(table, rid, row)?,
            None => {
                self.txn().insert(table, row)?;
            }
        }
        Ok(())
    }

    /// Record this load's accumulated counters under idempotency
    /// `token` inside the load's transaction — the network-load analog
    /// of [`Loader::set_manifest`]. The unique `load_token_token` index
    /// turns a racing duplicate into a typed `UniqueViolation` instead
    /// of a double-apply.
    pub fn set_load_token(&mut self, token: &str) -> Result<()> {
        let table = self.store.schema.load_token;
        let s = self.stats;
        self.txn().insert(
            table,
            vec![
                Value::Text(token.to_string()),
                Value::Int(s.statements as i64),
                Value::Int(s.applications as i64),
                Value::Int(s.resource_types as i64),
                Value::Int(s.executions as i64),
                Value::Int(s.resources as i64),
                Value::Int(s.attributes as i64),
                Value::Int(s.constraints as i64),
                Value::Int(s.results as i64),
            ],
        )?;
        Ok(())
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> LoadStats {
        self.stats
    }

    /// Commit the load; merges caches into the store and returns stats.
    pub fn commit(mut self) -> Result<LoadStats> {
        let txn = self.txn.take().expect("loader already finished");
        txn.commit()?;
        let mut cache = self.store.cache.write();
        cache.applications.extend(self.overlay.applications.drain());
        cache.types.extend(self.overlay.types.drain());
        cache.executions.extend(self.overlay.executions.drain());
        cache.resources.extend(self.overlay.resources.drain());
        cache.metrics.extend(self.overlay.metrics.drain());
        cache.tools.extend(self.overlay.tools.drain());
        cache
            .resource_meta
            .extend(self.overlay.resource_meta.drain());
        drop(cache);
        *self.store.registry.write() = std::mem::replace(&mut self.registry, TypeRegistry::empty());
        Ok(self.stats)
    }

    /// Abandon the load; the transaction rolls back and caches are
    /// untouched.
    pub fn rollback(mut self) -> Result<()> {
        if let Some(txn) = self.txn.take() {
            txn.rollback()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ptdf() -> &'static str {
        r#"
Application IRS
Execution irs-mcr-008 IRS
Resource /MCRGrid grid
Resource /MCRGrid/MCR grid/machine
Resource /MCRGrid/MCR/batch grid/machine/partition
Resource /MCRGrid/MCR/batch/n1 grid/machine/partition/node
Resource /MCRGrid/MCR/batch/n1/p0 grid/machine/partition/node/processor
ResourceAttribute /MCRGrid/MCR/batch/n1/p0 vendor Intel string
ResourceAttribute /MCRGrid/MCR/batch/n1/p0 "clock MHz" 2400 string
Resource /irs-run execution irs-mcr-008
Resource /irs-run/process0 execution/process
ResourceAttribute /irs-run/process0 node /MCRGrid/MCR/batch/n1 resource
PerfResult irs-mcr-008 "/irs-run/process0,/MCRGrid/MCR/batch/n1/p0(primary)" IRS "CPU time" 42.5 seconds
PerfResult irs-mcr-008 /irs-run(primary) IRS "wall time" 99.25 seconds
"#
    }

    #[test]
    fn bootstrap_loads_base_types() {
        let store = PTDataStore::in_memory().unwrap();
        let reg = store.registry();
        assert!(reg.contains("grid/machine/partition/node/processor"));
        assert!(reg.contains("metric"));
        assert_eq!(
            store
                .db()
                .row_count(store.schema().focus_framework)
                .unwrap(),
            perftrack_model::types::BASE_HIERARCHIES.len()
                + perftrack_model::types::BASE_SINGLETON_TYPES.len()
        );
        assert!(store.type_id("grid").is_some());
    }

    #[test]
    fn load_sample_ptdf_and_counts() {
        let store = PTDataStore::in_memory().unwrap();
        let stats = store.load_ptdf_str(sample_ptdf()).unwrap();
        assert_eq!(stats.applications, 1);
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.resources, 7);
        assert_eq!(stats.attributes, 2);
        assert_eq!(
            stats.constraints, 1,
            "resource-typed attribute becomes constraint"
        );
        assert_eq!(stats.results, 2);
        assert_eq!(store.result_count().unwrap(), 2);
        assert_eq!(store.resource_count().unwrap(), 7);
        // Attributes readable back.
        let p0 = store
            .resource_by_name("/MCRGrid/MCR/batch/n1/p0")
            .unwrap()
            .unwrap();
        let attrs = store.attributes_of(p0.id).unwrap();
        assert_eq!(attrs.len(), 2);
        assert!(attrs
            .iter()
            .any(|(n, v, _)| n == "clock MHz" && v == "2400"));
    }

    #[test]
    fn closure_tables_maintained() {
        let store = PTDataStore::in_memory().unwrap();
        store.load_ptdf_str(sample_ptdf()).unwrap();
        let p0 = store
            .resource_by_name("/MCRGrid/MCR/batch/n1/p0")
            .unwrap()
            .unwrap();
        // p0 has 4 ancestors.
        let idx = store.db().index_id("rha_resource").unwrap();
        let rows = store.db().index_lookup(idx, &[Value::Int(p0.id)]).unwrap();
        assert_eq!(rows.len(), 4);
        // The grid has 4 descendants (machine, partition, node, p0).
        let grid = store.resource_by_name("/MCRGrid").unwrap().unwrap();
        let idx = store.db().index_id("rhd_resource").unwrap();
        let rows = store
            .db()
            .index_lookup(idx, &[Value::Int(grid.id)])
            .unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn hierarchy_violations_rejected() {
        let store = PTDataStore::in_memory().unwrap();
        store.add_resource("/G", "grid").unwrap();
        // Missing parent.
        assert!(store
            .add_resource("/G/M/batch", "grid/machine/partition")
            .is_err());
        // Wrong parent type.
        assert!(store
            .add_resource("/G/p", "grid/machine/partition/node/processor")
            .is_err());
        // Unknown type.
        assert!(store.add_resource("/X", "mystery").is_err());
        // Nested type at top level.
        assert!(store.add_resource("/M", "grid/machine").is_err());
        // Duplicate with same type is idempotent.
        let id1 = store.add_resource("/G", "grid").unwrap();
        assert_eq!(store.resource_id("/G"), Some(id1));
        // Duplicate with different type errors.
        assert!(store.add_resource("/G", "application").is_err());
    }

    #[test]
    fn result_requires_existing_execution_and_resources() {
        let store = PTDataStore::in_memory().unwrap();
        store.add_resource("/app", "application").unwrap();
        let pr = PerformanceResult::simple(
            "no-such-exec",
            "m",
            1.0,
            "u",
            "t",
            vec![ResourceName::new("/app").unwrap()],
        );
        assert!(store.add_performance_result(&pr).is_err());
        store.add_execution("e1", "IRS").unwrap();
        let pr = PerformanceResult::simple(
            "e1",
            "m",
            1.0,
            "u",
            "t",
            vec![ResourceName::new("/ghost").unwrap()],
        );
        assert!(store.add_performance_result(&pr).is_err());
        // Empty resource sets rejected.
        let pr = PerformanceResult {
            execution: "e1".into(),
            metric: "m".into(),
            value: 1.0,
            units: "u".into(),
            tool: "t".into(),
            resource_sets: vec![],
        };
        assert!(store.add_performance_result(&pr).is_err());
    }

    #[test]
    fn rolled_back_load_leaves_no_trace() {
        let store = PTDataStore::in_memory().unwrap();
        let mut l = store.begin_load();
        l.ensure_application("ghost-app").unwrap();
        l.ensure_resource("/ghost", "application").unwrap();
        l.rollback().unwrap();
        assert_eq!(store.resource_id("/ghost"), None);
        assert_eq!(store.db().row_count(store.schema().application).unwrap(), 0);
        // A fresh load works fine afterwards.
        store.load_ptdf_str(sample_ptdf()).unwrap();
        assert_eq!(store.result_count().unwrap(), 2);
    }

    #[test]
    fn type_extension_via_statements() {
        let store = PTDataStore::in_memory().unwrap();
        let stats = store
            .load_ptdf_str("ResourceType syncObject\nResourceType syncObject/communicator\n")
            .unwrap();
        assert_eq!(stats.resource_types, 2);
        assert!(store.registry().contains("syncObject/communicator"));
        // Unknown parent fails the load.
        assert!(store.load_ptdf_str("ResourceType nowhere/child\n").is_err());
    }

    #[test]
    fn export_import_roundtrip() {
        let store = PTDataStore::in_memory().unwrap();
        store.load_ptdf_str(sample_ptdf()).unwrap();
        store.add_resource_type("syncObject").unwrap();
        let exported = store.export_ptdf().unwrap();
        let store2 = PTDataStore::in_memory().unwrap();
        store2.load_statements(&exported).unwrap();
        assert_eq!(
            store2.result_count().unwrap(),
            store.result_count().unwrap()
        );
        assert_eq!(
            store2.resource_count().unwrap(),
            store.resource_count().unwrap()
        );
        assert!(store2.registry().contains("syncObject"));
        // Second export is identical (canonical order).
        let exported2 = store2.export_ptdf().unwrap();
        assert_eq!(exported.len(), exported2.len());
    }

    #[test]
    fn parallel_text_load_matches_serial() {
        let store1 = PTDataStore::in_memory().unwrap();
        let store2 = PTDataStore::in_memory().unwrap();
        // Shared machine definitions must load first in both paths.
        let machine = r#"
Resource /G grid
Resource /G/M grid/machine
"#;
        store1.load_ptdf_str(machine).unwrap();
        store2.load_ptdf_str(machine).unwrap();
        let texts: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "Application A\nExecution e{i} A\nResource /run{i} execution\nPerfResult e{i} /run{i}(primary) T m{i} {i}.5 s\n"
                )
            })
            .collect();
        for t in &texts {
            store1.load_ptdf_str(t).unwrap();
        }
        let stats = store2.load_ptdf_texts_parallel(&texts, 3).unwrap();
        assert_eq!(stats.results, 6);
        assert_eq!(
            store1.result_count().unwrap(),
            store2.result_count().unwrap()
        );
        assert_eq!(store1.metrics(), store2.metrics());
    }

    #[test]
    fn persistent_store_reopens() {
        let dir = std::env::temp_dir().join(format!("ptds-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = PTDataStore::open(&dir).unwrap();
            store.load_ptdf_str(sample_ptdf()).unwrap();
        }
        let store = PTDataStore::open(&dir).unwrap();
        assert_eq!(store.result_count().unwrap(), 2);
        assert!(store.resource_id("/MCRGrid/MCR/batch/n1/p0").is_some());
        assert!(store.registry().contains("grid/machine"));
        // Ids keep advancing after reopen (no collisions).
        let id = store.add_resource("/NewTop", "grid").unwrap();
        let p0 = store
            .resource_by_name("/MCRGrid/MCR/batch/n1/p0")
            .unwrap()
            .unwrap();
        assert!(id > p0.id);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_execution_cascades_and_leaves_resources() {
        let store = PTDataStore::in_memory().unwrap();
        store.load_ptdf_str(sample_ptdf()).unwrap();
        // Add a second execution sharing resources.
        store
            .load_ptdf_str(
                "Execution irs-mcr-009 IRS\nPerfResult irs-mcr-009 /irs-run(primary) IRS \"wall time\" 55.0 seconds\n",
            )
            .unwrap();
        assert_eq!(store.result_count().unwrap(), 3);
        let (results, foci, links) = store.delete_execution("irs-mcr-008").unwrap();
        assert_eq!(results, 2);
        assert_eq!(foci, 2);
        assert_eq!(links, 3);
        // The other execution's result and all resources survive.
        assert_eq!(store.result_count().unwrap(), 1);
        assert_eq!(store.resource_count().unwrap(), 7);
        assert!(store.execution_id("irs-mcr-008").is_none());
        assert!(store.execution_id("irs-mcr-009").is_some());
        // Queries see a consistent store.
        let engine = crate::query::QueryEngine::new(&store);
        let rows = engine.run(&[]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].execution, "irs-mcr-009");
        // Deleting again errors.
        assert!(store.delete_execution("irs-mcr-008").is_err());
    }

    #[test]
    fn size_bytes_reports_growth() {
        let store = PTDataStore::in_memory().unwrap();
        let before = store.size_bytes().unwrap();
        store.load_ptdf_str(sample_ptdf()).unwrap();
        assert!(store.size_bytes().unwrap() >= before);
    }

    fn write_sample_file(dir: &Path) -> std::path::PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("sample.ptdf");
        std::fs::write(&path, sample_ptdf()).unwrap();
        path
    }

    #[test]
    fn resumable_load_records_manifest_and_skips_done_files() {
        let dir = std::env::temp_dir().join(format!("ptds-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let file = write_sample_file(&dir.join("in"));
        let store = PTDataStore::in_memory().unwrap();
        let opts = BulkLoadOptions {
            batch_statements: 3,
            resume: true,
        };
        let r1 = store
            .load_ptdf_files_resumable(&[file.clone()], &opts)
            .unwrap();
        assert_eq!(r1.files_loaded, 1);
        assert_eq!(r1.files_skipped, 0);
        assert!(r1.batches_committed >= 4, "14 statements / batches of 3");
        assert_eq!(r1.stats.results, 2);
        let entry = store
            .manifest_entry(&file.to_string_lossy())
            .unwrap()
            .unwrap();
        assert!(entry.done);
        assert_eq!(entry.watermark, r1.stats.statements);

        // A second resume run is a no-op: the manifest says done.
        let r2 = store.load_ptdf_files_resumable(&[file], &opts).unwrap();
        assert_eq!(r2.files_skipped, 1);
        assert_eq!(r2.files_loaded, 0);
        assert_eq!(r2.stats.statements, 0);
        assert_eq!(store.result_count().unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumable_load_resumes_from_watermark() {
        let dir = std::env::temp_dir().join(format!("ptds-wm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let file = write_sample_file(&dir.join("in"));
        let key = file.to_string_lossy().to_string();
        let text = sample_ptdf();
        let store = PTDataStore::in_memory().unwrap();
        // Simulate a run that committed the first 5 statements and died:
        // apply them by hand and record the watermark the way the loader
        // would have.
        let stmts = perftrack_ptdf::parse_str(text).unwrap();
        let hash = perftrack_store::wal::crc32(text.as_bytes()) as i64;
        let mut l = store.begin_load();
        for s in &stmts[..5] {
            l.apply(s).unwrap();
        }
        l.set_manifest(&key, hash, 5, false).unwrap();
        l.commit().unwrap();

        let opts = BulkLoadOptions {
            batch_statements: 4,
            resume: true,
        };
        let r = store.load_ptdf_files_resumable(&[file], &opts).unwrap();
        assert_eq!(r.resumed_statements, 5, "committed prefix skipped");
        assert_eq!(r.stats.statements, stmts.len() - 5);
        // The total store contents equal an uninterrupted load's.
        let baseline = PTDataStore::in_memory().unwrap();
        baseline.load_ptdf_str(text).unwrap();
        assert_eq!(
            store.result_count().unwrap(),
            baseline.result_count().unwrap()
        );
        assert_eq!(
            store.resource_count().unwrap(),
            baseline.resource_count().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_file_reloads_from_scratch_under_resume() {
        let dir = std::env::temp_dir().join(format!("ptds-hash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let in_dir = dir.join("in");
        std::fs::create_dir_all(&in_dir).unwrap();
        let path = in_dir.join("app.ptdf");
        std::fs::write(&path, "Application One\n").unwrap();
        let store = PTDataStore::in_memory().unwrap();
        let opts = BulkLoadOptions {
            batch_statements: 8,
            resume: true,
        };
        store
            .load_ptdf_files_resumable(&[path.clone()], &opts)
            .unwrap();
        // Edit the file: the stale manifest row must not mask new content.
        std::fs::write(&path, "Application One\nApplication Two\n").unwrap();
        let r = store.load_ptdf_files_resumable(&[path], &opts).unwrap();
        assert_eq!(r.files_loaded, 1);
        assert_eq!(r.files_skipped, 0);
        assert_eq!(r.stats.applications, 1, "only the new app row is added");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("ptds-mreopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let file = write_sample_file(&dir.join("in"));
        let opts = BulkLoadOptions {
            batch_statements: 64,
            resume: true,
        };
        {
            let store = PTDataStore::open(&dir.join("db")).unwrap();
            store
                .load_ptdf_files_resumable(&[file.clone()], &opts)
                .unwrap();
        }
        let store = PTDataStore::open(&dir.join("db")).unwrap();
        let r = store.load_ptdf_files_resumable(&[file], &opts).unwrap();
        assert_eq!(r.files_skipped, 1, "manifest persisted across reopen");
        assert_eq!(store.result_count().unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
