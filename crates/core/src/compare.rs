//! Comparison operators across executions (§6 lists these as the
//! enhancement "in progress"; they are grounded in the comparison-based
//! diagnosis line of work the paper builds on, Karavanic & Miller).
//!
//! Two executions rarely share context resources verbatim — process and
//! time resources are execution-specific — so results are aligned on a
//! *normalized key*: the metric plus the base names of context resources
//! whose hierarchy is structural (build, environment, grid,
//! application, ...), dropping the per-run `execution` and `time`
//! hierarchies. Difference/ratio operators and a load-balance summary
//! (the Figure 5 computation) operate on aligned pairs.
//!
//! On top of the pairwise operators this module provides the
//! execution-comparison engine behind `pt compare`:
//!
//! * [`Compare::tree_compare`] aligns two-or-N executions' *resource
//!   trees* by resource name and type path, tolerating missing or extra
//!   subtrees (reported as [`PresenceDrift`]), and computes per-resource
//!   per-metric deltas and ratios under configurable aggregation and
//!   normalization ([`CompareOptions`]).
//! * [`TreeComparison`] ranks the most-divergent resources and renders
//!   itself as a fixed-width table or as the versioned
//!   `pt-compare/v1` JSON document (contract in `docs/COMPARE.md`).
//! * [`evaluate_baseline`] checks a current metrics document against a
//!   stored baseline and produces typed [`Regression`] findings,
//!   distinguishing real performance regressions from schema drift —
//!   the engine behind `pt bench --compare-baseline`.
#![deny(missing_docs)]

use crate::datastore::PTDataStore;
use crate::error::Result;
use crate::query::{QueryEngine, ResultRow};
use perftrack_store::metrics::Json;
use std::collections::{BTreeMap, HashMap};

/// An aligned pair of results from two executions.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Human-readable alignment key: `metric @ resource,resource,...`.
    pub key: String,
    /// Aggregated value in the first execution.
    pub value_a: f64,
    /// Aggregated value in the second execution.
    pub value_b: f64,
    /// `value_b - value_a`.
    pub difference: f64,
    /// `value_b / value_a` (`None` when `value_a == 0`).
    pub ratio: Option<f64>,
}

/// Summary of a comparison between two executions.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    /// Name of the first (baseline) execution.
    pub execution_a: String,
    /// Name of the second execution.
    pub execution_b: String,
    /// Aligned pairs, sorted by key.
    pub rows: Vec<ComparisonRow>,
    /// Results in A with no aligned partner in B.
    pub only_in_a: usize,
    /// Results in B with no aligned partner in A.
    pub only_in_b: usize,
}

impl ComparisonReport {
    /// Rows where B is slower than A by more than `threshold_ratio`
    /// (regressions when A is the baseline).
    pub fn regressions(&self, threshold_ratio: f64) -> Vec<&ComparisonRow> {
        self.rows
            .iter()
            .filter(|r| r.ratio.is_some_and(|q| q > threshold_ratio))
            .collect()
    }

    /// Rows where B is faster than A by more than the reciprocal of
    /// `threshold_ratio`.
    pub fn improvements(&self, threshold_ratio: f64) -> Vec<&ComparisonRow> {
        self.rows
            .iter()
            .filter(|r| r.ratio.is_some_and(|q| q < 1.0 / threshold_ratio))
            .collect()
    }

    /// Geometric-mean ratio over aligned rows with positive values — an
    /// overall speedup/slowdown factor of B relative to A.
    pub fn geo_mean_ratio(&self) -> Option<f64> {
        geo_mean(self.rows.iter().filter_map(|r| r.ratio))
    }
}

/// Geometric mean over the positive values of an iterator of ratios.
fn geo_mean(ratios: impl Iterator<Item = f64>) -> Option<f64> {
    let logs: Vec<f64> = ratios.filter(|q| *q > 0.0).map(f64::ln).collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// One group of the load-balance summary (Figure 5: one process count).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalanceRow {
    /// Group label (typically the execution or its process count).
    pub label: String,
    /// Number of values in the group.
    pub n: usize,
    /// Smallest value in the group.
    pub min: f64,
    /// Largest value in the group.
    pub max: f64,
    /// Mean of the group.
    pub mean: f64,
    /// `max / min` (`None` if min is 0) — the paper's "rough indication of
    /// load balance".
    pub imbalance: Option<f64>,
}

// ---------------------------------------------------------------------------
// Tree alignment (`pt compare`)
// ---------------------------------------------------------------------------

/// How several raw results that land on the same (resource, metric,
/// execution) cell are collapsed into one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Arithmetic mean (the default; matches the pairwise operators).
    Mean,
    /// Sum — total cost attribution.
    Sum,
    /// Minimum — best-case per cell.
    Min,
    /// Maximum — worst-case per cell (load-imbalance hunting).
    Max,
}

impl Aggregate {
    /// Parse a CLI spelling (`mean`/`sum`/`min`/`max`).
    pub fn parse(s: &str) -> Option<Aggregate> {
        Some(match s {
            "mean" => Aggregate::Mean,
            "sum" => Aggregate::Sum,
            "min" => Aggregate::Min,
            "max" => Aggregate::Max,
            _ => return None,
        })
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Mean => "mean",
            Aggregate::Sum => "sum",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
        }
    }
}

/// How aggregated values are scaled before deltas and ratios are taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// Use the aggregated values as-is.
    Raw,
    /// Divide each value by the execution's total for that metric, so
    /// executions of different overall scale compare by *distribution*
    /// (each cell becomes a share in `[0, 1]`).
    Share,
}

impl Normalization {
    /// Parse a CLI spelling (`raw`/`share`).
    pub fn parse(s: &str) -> Option<Normalization> {
        Some(match s {
            "raw" => Normalization::Raw,
            "share" => Normalization::Share,
            _ => return None,
        })
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Normalization::Raw => "raw",
            Normalization::Share => "share",
        }
    }
}

/// Options for [`Compare::tree_compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompareOptions {
    /// Cell aggregation (default [`Aggregate::Mean`]).
    pub aggregate: Aggregate,
    /// Value normalization (default [`Normalization::Raw`]).
    pub normalization: Normalization,
    /// Regression threshold in percent: a ranked cell whose last/first
    /// ratio exceeds `1 + threshold_pct/100` counts as a regression
    /// (default 25).
    pub threshold_pct: f64,
    /// How many ranked cells to keep in [`TreeComparison::ranked`]
    /// (default 10; the total before truncation is reported separately).
    pub top: usize,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            aggregate: Aggregate::Mean,
            normalization: Normalization::Raw,
            threshold_pct: 25.0,
            top: 10,
        }
    }
}

/// One node of the merged resource tree: a structural resource observed
/// in at least one compared execution.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedNode {
    /// Full resource name (e.g. `/irs-build/main.c/solve`).
    pub name: String,
    /// Last path segment of the name.
    pub base_name: String,
    /// Resource type path (e.g. `build/module/function`).
    pub type_path: String,
    /// Per-execution presence flags, index-aligned with
    /// [`TreeComparison::executions`].
    pub present: Vec<bool>,
    /// Per-metric aggregated (and normalized) values, one slot per
    /// execution; `None` when the execution has no result for the metric
    /// at this resource.
    pub metrics: BTreeMap<String, Vec<Option<f64>>>,
    /// Child nodes, sorted by name.
    pub children: Vec<AlignedNode>,
}

/// A (resource, metric) cell ranked by divergence across the compared
/// executions.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergentResource {
    /// Full resource name.
    pub resource: String,
    /// Resource type path.
    pub type_path: String,
    /// Metric name.
    pub metric: String,
    /// Aggregated value per execution (index-aligned with
    /// [`TreeComparison::executions`]; `None` = not measured there).
    pub values: Vec<Option<f64>>,
    /// `last - first` over the executions that have the cell.
    pub delta: f64,
    /// `last / first` (`None` when the first value is 0).
    pub ratio: Option<f64>,
    /// Divergence score: the largest `|ln(v_i / v_0)|` over later
    /// executions; infinite when a value flips to or from zero.
    pub score: f64,
}

/// A resource present in some compared executions but not all — a
/// missing or extra subtree the alignment tolerated.
#[derive(Debug, Clone, PartialEq)]
pub struct PresenceDrift {
    /// Full resource name.
    pub resource: String,
    /// Resource type path.
    pub type_path: String,
    /// Per-execution presence flags.
    pub present: Vec<bool>,
}

/// Result of [`Compare::tree_compare`]: the merged resource tree, the
/// divergence ranking, and presence drift, with renderers for the table
/// and the versioned JSON contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeComparison {
    /// Compared execution names, in argument order; index 0 is the
    /// baseline all deltas and ratios are taken against.
    pub executions: Vec<String>,
    /// Roots of the merged structural resource tree.
    pub roots: Vec<AlignedNode>,
    /// Most-divergent (resource, metric) cells, highest score first,
    /// truncated to [`CompareOptions::top`].
    pub ranked: Vec<DivergentResource>,
    /// Number of divergence-scored cells before truncation.
    pub ranked_total: usize,
    /// Resources not present in every execution.
    pub drift: Vec<PresenceDrift>,
    /// Number of (resource, metric) cells measured in every execution.
    pub aligned_cells: usize,
    /// Options the comparison ran under.
    pub options: CompareOptions,
}

impl TreeComparison {
    /// Ranked cells whose last/first ratio exceeds the threshold —
    /// regressions when execution 0 is the baseline. Cells whose value
    /// appeared from zero (infinite score, no ratio) count too.
    pub fn regressions(&self) -> Vec<&DivergentResource> {
        let limit = 1.0 + self.options.threshold_pct / 100.0;
        self.ranked
            .iter()
            .filter(|r| match r.ratio {
                Some(q) => q > limit,
                None => r.delta > 0.0,
            })
            .collect()
    }

    /// Ranked cells faster than the baseline by more than the threshold.
    pub fn improvements(&self) -> Vec<&DivergentResource> {
        let limit = 1.0 + self.options.threshold_pct / 100.0;
        self.ranked
            .iter()
            .filter(|r| match r.ratio {
                Some(q) => q > 0.0 && q < 1.0 / limit,
                None => r.delta < 0.0,
            })
            .collect()
    }

    /// Geometric-mean last/first ratio over all ranked cells with a
    /// positive ratio.
    pub fn geo_mean_ratio(&self) -> Option<f64> {
        geo_mean(self.ranked.iter().filter_map(|r| r.ratio))
    }

    /// The `pt-compare/v1` JSON document (schema in `docs/COMPARE.md`).
    pub fn to_json(&self) -> Json {
        let num_or_null = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => Json::Num(x),
            _ => Json::Null,
        };
        let ranked = self
            .ranked
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("resource".into(), Json::Str(r.resource.clone())),
                    ("type".into(), Json::Str(r.type_path.clone())),
                    ("metric".into(), Json::Str(r.metric.clone())),
                    (
                        "values".into(),
                        Json::Arr(r.values.iter().map(|v| num_or_null(*v)).collect()),
                    ),
                    ("delta".into(), num_or_null(Some(r.delta))),
                    ("ratio".into(), num_or_null(r.ratio)),
                    ("score".into(), num_or_null(Some(r.score))),
                ])
            })
            .collect();
        let drift = self
            .drift
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("resource".into(), Json::Str(d.resource.clone())),
                    ("type".into(), Json::Str(d.type_path.clone())),
                    (
                        "present".into(),
                        Json::Arr(d.present.iter().map(|p| Json::Bool(*p)).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("pt-compare/v1".into())),
            (
                "executions".into(),
                Json::Arr(
                    self.executions
                        .iter()
                        .map(|e| Json::Str(e.clone()))
                        .collect(),
                ),
            ),
            (
                "options".into(),
                Json::Obj(vec![
                    (
                        "aggregate".into(),
                        Json::Str(self.options.aggregate.name().into()),
                    ),
                    (
                        "normalization".into(),
                        Json::Str(self.options.normalization.name().into()),
                    ),
                    (
                        "threshold_pct".into(),
                        Json::Num(self.options.threshold_pct),
                    ),
                    ("top".into(), Json::UInt(self.options.top as u64)),
                ]),
            ),
            (
                "aligned_cells".into(),
                Json::UInt(self.aligned_cells as u64),
            ),
            ("ranked_total".into(), Json::UInt(self.ranked_total as u64)),
            ("ranked".into(), Json::Arr(ranked)),
            ("drift".into(), Json::Arr(drift)),
            (
                "summary".into(),
                Json::Obj(vec![
                    (
                        "regressions".into(),
                        Json::UInt(self.regressions().len() as u64),
                    ),
                    (
                        "improvements".into(),
                        Json::UInt(self.improvements().len() as u64),
                    ),
                    ("geo_mean_ratio".into(), num_or_null(self.geo_mean_ratio())),
                ]),
            ),
        ])
    }

    /// Human-readable fixed-width rendering (the `--table` output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compare: {} (aggregate={}, normalization={}, threshold={}%)\n",
            self.executions.join(" vs "),
            self.options.aggregate.name(),
            self.options.normalization.name(),
            self.options.threshold_pct
        ));
        out.push_str(&format!(
            "aligned cells: {}   divergent: {}   presence drift: {}\n",
            self.aligned_cells,
            self.ranked_total,
            self.drift.len()
        ));
        if let Some(g) = self.geo_mean_ratio() {
            out.push_str(&format!(
                "geo-mean ratio {}/{}: {g:.4}\n",
                self.executions.last().map(String::as_str).unwrap_or("?"),
                self.executions.first().map(String::as_str).unwrap_or("?")
            ));
        }
        if !self.ranked.is_empty() {
            out.push_str(&format!(
                "\n{:<44} {:<16} {:>12} {:>12} {:>10} {:>8}\n",
                "RESOURCE", "METRIC", "FIRST", "LAST", "DELTA", "RATIO"
            ));
            for r in &self.ranked {
                let first = r.values.first().copied().flatten();
                let last = r.values.last().copied().flatten();
                let fmt = |v: Option<f64>| match v {
                    Some(x) => format!("{x:.4}"),
                    None => "-".into(),
                };
                let ratio = match r.ratio {
                    Some(q) => format!("{q:.2}x"),
                    None => "-".into(),
                };
                out.push_str(&format!(
                    "{:<44} {:<16} {:>12} {:>12} {:>+10.4} {:>8}\n",
                    r.resource,
                    r.metric,
                    fmt(first),
                    fmt(last),
                    r.delta,
                    ratio
                ));
            }
        }
        for d in &self.drift {
            let present: Vec<&str> = self
                .executions
                .iter()
                .zip(&d.present)
                .filter(|(_, p)| **p)
                .map(|(e, _)| e.as_str())
                .collect();
            out.push_str(&format!(
                "only in {}: {} ({})\n",
                present.join(","),
                d.resource,
                d.type_path
            ));
        }
        out.push_str(&format!(
            "regressions (> {}% slower): {}   improvements: {}\n",
            self.options.threshold_pct,
            self.regressions().len(),
            self.improvements().len()
        ));
        out
    }
}

/// Comparison engine over a data store.
pub struct Compare<'s> {
    store: &'s PTDataStore,
}

impl<'s> Compare<'s> {
    /// Bind to a store.
    pub fn new(store: &'s PTDataStore) -> Self {
        Compare { store }
    }

    /// All result rows of one execution.
    pub fn rows_of_execution(&self, execution: &str) -> Result<Vec<ResultRow>> {
        let engine = QueryEngine::new(self.store);
        let all = engine.run(&[])?;
        Ok(all
            .into_iter()
            .filter(|r| r.execution == execution)
            .collect())
    }

    /// The normalized alignment key of a result: metric plus sorted base
    /// names of structural context resources (execution/time hierarchies
    /// dropped).
    pub fn alignment_key(&self, row: &ResultRow) -> Result<String> {
        let engine = QueryEngine::new(self.store);
        let types = engine.type_path_by_id()?;
        self.alignment_key_with(row, &types)
    }

    /// [`Compare::alignment_key`] with a pre-built type map, so per-row
    /// callers (the comparison loop) scan the type table once, not per row.
    fn alignment_key_with(
        &self,
        row: &ResultRow,
        types: &std::collections::HashMap<i64, String>,
    ) -> Result<String> {
        let mut parts: Vec<String> = Vec::new();
        for &rid in &row.context {
            if let Some(rec) = self.store.resource_by_id(rid)? {
                let tp = types.get(&rec.type_id).cloned().unwrap_or_default();
                let root = tp.split('/').next().unwrap_or("");
                if root == "execution" || root == "time" {
                    continue;
                }
                parts.push(rec.base_name);
            }
        }
        parts.sort();
        parts.dedup();
        Ok(format!("{} @ {}", row.metric, parts.join(",")))
    }

    /// Align and compare two executions.
    pub fn compare_executions(&self, exec_a: &str, exec_b: &str) -> Result<ComparisonReport> {
        let rows_a = self.rows_of_execution(exec_a)?;
        let rows_b = self.rows_of_execution(exec_b)?;
        let types = QueryEngine::new(self.store).type_path_by_id()?;
        // Key → mean value (several rows can share a normalized key, e.g.
        // per-process results collapse when process resources are dropped).
        let collapse = |rows: &[ResultRow]| -> Result<HashMap<String, (f64, usize)>> {
            let mut m: HashMap<String, (f64, usize)> = HashMap::new();
            for r in rows {
                let key = self.alignment_key_with(r, &types)?;
                let e = m.entry(key).or_insert((0.0, 0));
                e.0 += r.value;
                e.1 += 1;
            }
            Ok(m)
        };
        let map_a = collapse(&rows_a)?;
        let map_b = collapse(&rows_b)?;
        let mut rows = Vec::new();
        let mut only_in_a = 0usize;
        for (key, (sum_a, n_a)) in &map_a {
            match map_b.get(key) {
                Some((sum_b, n_b)) => {
                    let value_a = sum_a / *n_a as f64;
                    let value_b = sum_b / *n_b as f64;
                    rows.push(ComparisonRow {
                        key: key.clone(),
                        value_a,
                        value_b,
                        difference: value_b - value_a,
                        ratio: (value_a != 0.0).then(|| value_b / value_a),
                    });
                }
                None => only_in_a += 1,
            }
        }
        let only_in_b = map_b
            .keys()
            .filter(|k| !map_a.contains_key(k.as_str()))
            .count();
        rows.sort_by(|x, y| x.key.cmp(&y.key));
        Ok(ComparisonReport {
            execution_a: exec_a.to_string(),
            execution_b: exec_b.to_string(),
            rows,
            only_in_a,
            only_in_b,
        })
    }

    /// Align two-or-N executions' resource trees and rank the
    /// most-divergent (resource, metric) cells.
    ///
    /// Structural resources (anything outside the per-run `execution`
    /// and `time` hierarchies) are merged across executions by full
    /// name; resources present in some executions only are tolerated and
    /// reported as [`PresenceDrift`]. Every result row attaches its
    /// value to its structural context resources, cells are collapsed
    /// under [`CompareOptions::aggregate`], optionally normalized to
    /// per-execution shares, and scored by `|ln(ratio)|` against
    /// execution 0.
    ///
    /// ```
    /// use perftrack::{Compare, PTDataStore};
    /// use perftrack::compare::CompareOptions;
    ///
    /// let store = PTDataStore::in_memory().unwrap();
    /// store
    ///     .load_ptdf_str(
    ///         "Application A\nResource /f application\n\
    ///          Execution a A\nExecution b A\n\
    ///          PerfResult a /f(primary) T time 2.0 s\n\
    ///          PerfResult b /f(primary) T time 4.0 s\n",
    ///     )
    ///     .unwrap();
    /// let cmp = Compare::new(&store);
    /// let t = cmp.tree_compare(&["a", "b"], &CompareOptions::default()).unwrap();
    /// assert_eq!(t.ranked[0].ratio, Some(2.0));
    /// assert_eq!(t.regressions().len(), 1);
    /// ```
    pub fn tree_compare(&self, execs: &[&str], opts: &CompareOptions) -> Result<TreeComparison> {
        let n = execs.len();
        let engine = QueryEngine::new(self.store);
        let types = engine.type_path_by_id()?;
        let all = engine.run(&[])?;
        // Name → every argument slot with that name, so a self-compare
        // (`pt compare s v1 v1`) fills both columns.
        let mut exec_index: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, e) in execs.iter().enumerate() {
            exec_index.entry(e).or_default().push(i);
        }

        /// Accumulator for one (resource, metric, execution) cell.
        #[derive(Clone, Copy)]
        struct Cell {
            sum: f64,
            count: usize,
            min: f64,
            max: f64,
        }
        struct NodeAcc {
            base_name: String,
            type_path: String,
            parent: Option<String>,
            present: Vec<bool>,
            metrics: BTreeMap<String, Vec<Option<Cell>>>,
        }
        let mut nodes: BTreeMap<String, NodeAcc> = BTreeMap::new();

        // Pass 1: walk every result of the compared executions, mark the
        // structural ancestor chain present, and accumulate the value at
        // the context resources themselves (not their ancestors, which
        // would multiply-count shared cost).
        for row in &all {
            let Some(slots) = exec_index.get(row.execution.as_str()) else {
                continue;
            };
            for &rid in &row.context {
                let mut cursor = Some(rid);
                let mut at_context = true;
                while let Some(cur) = cursor {
                    let Some(rec) = self.store.resource_by_id(cur)? else {
                        break;
                    };
                    let tp = types.get(&rec.type_id).cloned().unwrap_or_default();
                    let root = tp.split('/').next().unwrap_or("");
                    if root == "execution" || root == "time" {
                        break;
                    }
                    let parent = match rec.parent_id {
                        Some(pid) => self.store.resource_by_id(pid)?.map(|p| p.name),
                        None => None,
                    };
                    let node = nodes.entry(rec.name.clone()).or_insert_with(|| NodeAcc {
                        base_name: rec.base_name.clone(),
                        type_path: tp,
                        parent,
                        present: vec![false; n],
                        metrics: BTreeMap::new(),
                    });
                    for &ei in slots {
                        node.present[ei] = true;
                        if at_context {
                            let cells = node
                                .metrics
                                .entry(row.metric.clone())
                                .or_insert_with(|| vec![None; n]);
                            let c = cells[ei].get_or_insert(Cell {
                                sum: 0.0,
                                count: 0,
                                min: f64::INFINITY,
                                max: f64::NEG_INFINITY,
                            });
                            c.sum += row.value;
                            c.count += 1;
                            c.min = c.min.min(row.value);
                            c.max = c.max.max(row.value);
                        }
                    }
                    at_context = false;
                    cursor = rec.parent_id;
                }
            }
        }

        // Pass 2: collapse cells under the chosen aggregate, then
        // normalize to per-execution metric shares if asked.
        let aggregate = |c: &Cell| match opts.aggregate {
            Aggregate::Mean => c.sum / c.count as f64,
            Aggregate::Sum => c.sum,
            Aggregate::Min => c.min,
            Aggregate::Max => c.max,
        };
        let mut values: BTreeMap<String, BTreeMap<String, Vec<Option<f64>>>> = BTreeMap::new();
        for (name, node) in &nodes {
            for (metric, cells) in &node.metrics {
                let row: Vec<Option<f64>> =
                    cells.iter().map(|c| c.as_ref().map(aggregate)).collect();
                values
                    .entry(name.clone())
                    .or_default()
                    .insert(metric.clone(), row);
            }
        }
        if opts.normalization == Normalization::Share {
            // metric → per-execution totals over all resources.
            let mut totals: BTreeMap<String, Vec<f64>> = BTreeMap::new();
            for per_metric in values.values() {
                for (metric, row) in per_metric {
                    let t = totals.entry(metric.clone()).or_insert_with(|| vec![0.0; n]);
                    for (i, v) in row.iter().enumerate() {
                        t[i] += v.unwrap_or(0.0);
                    }
                }
            }
            for per_metric in values.values_mut() {
                for (metric, row) in per_metric.iter_mut() {
                    let t = &totals[metric];
                    for (i, v) in row.iter_mut().enumerate() {
                        if let Some(x) = v {
                            *v = (t[i] != 0.0).then(|| *x / t[i]);
                        }
                    }
                }
            }
        }

        // Pass 3: rank divergence and collect drift.
        let mut ranked: Vec<DivergentResource> = Vec::new();
        let mut aligned_cells = 0usize;
        for (name, per_metric) in &values {
            let node = &nodes[name];
            for (metric, row) in per_metric {
                if row.iter().all(Option::is_some) {
                    aligned_cells += 1;
                }
                let known: Vec<(usize, f64)> = row
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.map(|x| (i, x)))
                    .collect();
                if known.len() < 2 {
                    continue;
                }
                let (first, last) = (known[0].1, known[known.len() - 1].1);
                let mut score = 0.0f64;
                for &(_, v) in &known[1..] {
                    score = score.max(log_divergence(first, v));
                }
                if score == 0.0 {
                    continue;
                }
                ranked.push(DivergentResource {
                    resource: name.clone(),
                    type_path: node.type_path.clone(),
                    metric: metric.clone(),
                    values: row.clone(),
                    delta: last - first,
                    ratio: (first != 0.0).then(|| last / first),
                    score,
                });
            }
        }
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    b.delta
                        .abs()
                        .partial_cmp(&a.delta.abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.resource.cmp(&b.resource))
                .then_with(|| a.metric.cmp(&b.metric))
        });
        let ranked_total = ranked.len();
        ranked.truncate(opts.top);

        let drift: Vec<PresenceDrift> = nodes
            .iter()
            .filter(|(_, node)| node.present.iter().any(|p| !p))
            .map(|(name, node)| PresenceDrift {
                resource: name.clone(),
                type_path: node.type_path.clone(),
                present: node.present.clone(),
            })
            .collect();

        // Pass 4: assemble the merged tree (children sorted by name via
        // the BTreeMap iteration order).
        fn build(
            name: &str,
            nodes: &BTreeMap<String, NodeAcc>,
            values: &BTreeMap<String, BTreeMap<String, Vec<Option<f64>>>>,
            children_of: &BTreeMap<&str, Vec<&str>>,
        ) -> AlignedNode {
            let acc = &nodes[name];
            AlignedNode {
                name: name.to_string(),
                base_name: acc.base_name.clone(),
                type_path: acc.type_path.clone(),
                present: acc.present.clone(),
                metrics: values.get(name).cloned().unwrap_or_default(),
                children: children_of
                    .get(name)
                    .into_iter()
                    .flatten()
                    .map(|c| build(c, nodes, values, children_of))
                    .collect(),
            }
        }
        let mut children_of: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut root_names: Vec<&str> = Vec::new();
        for (name, node) in &nodes {
            match node.parent.as_deref().filter(|p| nodes.contains_key(*p)) {
                Some(p) => children_of.entry(p).or_default().push(name),
                None => root_names.push(name),
            }
        }
        let roots = root_names
            .iter()
            .map(|r| build(r, &nodes, &values, &children_of))
            .collect();

        Ok(TreeComparison {
            executions: execs.iter().map(|e| e.to_string()).collect(),
            roots,
            ranked,
            ranked_total,
            drift,
            aligned_cells,
            options: opts.clone(),
        })
    }

    /// Load-balance summary (Figure 5): group `rows` (already filtered to
    /// one metric, typically one function) by execution and report
    /// min/max/mean across the group — e.g. across a run's processors.
    pub fn load_balance(&self, rows: &[ResultRow]) -> Vec<LoadBalanceRow> {
        let mut groups: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for r in rows {
            groups.entry(r.execution.clone()).or_default().push(r.value);
        }
        groups
            .into_iter()
            .map(|(label, values)| {
                let n = values.len();
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mean = values.iter().sum::<f64>() / n as f64;
                LoadBalanceRow {
                    label,
                    n,
                    min,
                    max,
                    mean,
                    imbalance: (min != 0.0).then(|| max / min),
                }
            })
            .collect()
    }
}

/// Divergence of `v` against baseline `b`: `|ln(v/b)|` when both are
/// nonzero with the same sign, `0` when both are zero, infinite when the
/// value flips to or from zero (or across zero).
fn log_divergence(b: f64, v: f64) -> f64 {
    if b == 0.0 && v == 0.0 {
        0.0
    } else if b == 0.0 || v == 0.0 || (b > 0.0) != (v > 0.0) {
        f64::INFINITY
    } else {
        (v / b).ln().abs()
    }
}

// ---------------------------------------------------------------------------
// Baseline gating (`pt bench --compare-baseline`)
// ---------------------------------------------------------------------------

/// Whether a larger value of a checked metric is good or bad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style metrics (ops/sec): a drop is a regression.
    HigherIsBetter,
    /// Latency-style metrics (seconds, µs): a rise is a regression.
    LowerIsBetter,
}

/// One metric to gate: a dotted path into the JSON documents plus its
/// direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineCheck {
    /// Dotted path (e.g. `load.statements_per_sec`).
    pub path: String,
    /// Which way is worse.
    pub direction: Direction,
}

impl BaselineCheck {
    /// Construct a check.
    pub fn new(path: &str, direction: Direction) -> Self {
        BaselineCheck {
            path: path.to_string(),
            direction,
        }
    }
}

/// Classification of one [`Regression`] finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The current value is worse than the baseline beyond the threshold.
    PerfRegression,
    /// A checked path is missing or non-numeric in either document — the
    /// schemas no longer line up, so the numbers cannot be trusted.
    SchemaDrift,
    /// The current value is better than the baseline beyond the
    /// threshold (informational; never fails the gate).
    Improvement,
}

impl FindingKind {
    /// Stable lowercase label used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::PerfRegression => "regression",
            FindingKind::SchemaDrift => "schema-drift",
            FindingKind::Improvement => "improvement",
        }
    }
}

/// A typed finding from [`evaluate_baseline`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// What happened.
    pub kind: FindingKind,
    /// The checked dotted path.
    pub path: String,
    /// Baseline value (`None` when missing — schema drift).
    pub baseline: Option<f64>,
    /// Current value (`None` when missing — schema drift).
    pub current: Option<f64>,
    /// `current / baseline` when both are present and baseline is
    /// nonzero.
    pub ratio: Option<f64>,
    /// Human-readable description.
    pub message: String,
}

/// Result of gating a current metrics document against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// All findings, worst first (drift, then regressions, then
    /// improvements).
    pub findings: Vec<Regression>,
    /// Threshold the gate ran with, in percent.
    pub threshold_pct: f64,
    /// Number of checks evaluated.
    pub checks: usize,
}

impl BaselineReport {
    /// True when any finding is a real performance regression.
    pub fn has_regressions(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.kind == FindingKind::PerfRegression)
    }

    /// True when any checked path failed to resolve — the documents'
    /// schemas have drifted and the comparison is unsound.
    pub fn has_drift(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.kind == FindingKind::SchemaDrift)
    }

    /// The `pt-compare-baseline/v1` JSON document (schema in
    /// `docs/COMPARE.md`).
    pub fn to_json(&self) -> Json {
        let num_or_null = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => Json::Num(x),
            _ => Json::Null,
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str("pt-compare-baseline/v1".into())),
            ("threshold_pct".into(), Json::Num(self.threshold_pct)),
            ("checks".into(), Json::UInt(self.checks as u64)),
            (
                "regressions".into(),
                Json::UInt(
                    self.findings
                        .iter()
                        .filter(|f| f.kind == FindingKind::PerfRegression)
                        .count() as u64,
                ),
            ),
            ("drift".into(), Json::Bool(self.has_drift())),
            (
                "findings".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("kind".into(), Json::Str(f.kind.label().into())),
                                ("path".into(), Json::Str(f.path.clone())),
                                ("baseline".into(), num_or_null(f.baseline)),
                                ("current".into(), num_or_null(f.current)),
                                ("ratio".into(), num_or_null(f.ratio)),
                                ("message".into(), Json::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable summary, one line per finding.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "baseline gate: {} checks, threshold {}%\n",
            self.checks, self.threshold_pct
        );
        if self.findings.is_empty() {
            out.push_str("all checks within threshold\n");
        }
        for f in &self.findings {
            out.push_str(&format!("[{}] {}\n", f.kind.label(), f.message));
        }
        out
    }
}

/// Resolve a dotted path through nested JSON objects to a number.
fn json_num(doc: &Json, path: &str) -> Option<f64> {
    let mut cur = doc;
    for seg in path.split('.') {
        match cur {
            Json::Obj(pairs) => cur = &pairs.iter().find(|(k, _)| k == seg)?.1,
            _ => return None,
        }
    }
    match cur {
        Json::Num(x) => Some(*x),
        Json::UInt(x) => Some(*x as f64),
        _ => None,
    }
}

/// Gate `current` against `baseline`: evaluate every check at
/// `threshold_pct` percent tolerance and produce typed findings.
///
/// A metric regresses when it is worse than the baseline by more than
/// the threshold in its [`Direction`]; a path that does not resolve to a
/// number in either document is [`FindingKind::SchemaDrift`].
///
/// ```
/// use perftrack::compare::{evaluate_baseline, BaselineCheck, Direction};
/// use perftrack::Json;
///
/// let base = Json::parse(r#"{"load":{"statements_per_sec":1000.0}}"#).unwrap();
/// let cur = Json::parse(r#"{"load":{"statements_per_sec":400.0}}"#).unwrap();
/// let checks = [BaselineCheck::new("load.statements_per_sec", Direction::HigherIsBetter)];
/// let report = evaluate_baseline(&base, &cur, &checks, 50.0);
/// assert!(report.has_regressions() && !report.has_drift());
/// ```
pub fn evaluate_baseline(
    baseline: &Json,
    current: &Json,
    checks: &[BaselineCheck],
    threshold_pct: f64,
) -> BaselineReport {
    let mut findings = Vec::new();
    let limit = 1.0 + threshold_pct / 100.0;
    for check in checks {
        let b = json_num(baseline, &check.path);
        let c = json_num(current, &check.path);
        let (Some(b), Some(c)) = (b, c) else {
            findings.push(Regression {
                kind: FindingKind::SchemaDrift,
                path: check.path.clone(),
                baseline: b,
                current: c,
                ratio: None,
                message: format!(
                    "{}: missing or non-numeric in {} document",
                    check.path,
                    if b.is_none() { "baseline" } else { "current" }
                ),
            });
            continue;
        };
        let ratio = (b != 0.0).then(|| c / b);
        // Normalize to "how many times worse", so one comparison serves
        // both directions.
        let worseness = match (check.direction, ratio) {
            (Direction::LowerIsBetter, Some(q)) => Some(q),
            (Direction::HigherIsBetter, Some(q)) if q > 0.0 => Some(1.0 / q),
            _ => None,
        };
        match worseness {
            Some(w) if w > limit => findings.push(Regression {
                kind: FindingKind::PerfRegression,
                path: check.path.clone(),
                baseline: Some(b),
                current: Some(c),
                ratio,
                message: format!(
                    "{}: {c:.4} vs baseline {b:.4} ({:.0}% worse, threshold {threshold_pct}%)",
                    check.path,
                    (w - 1.0) * 100.0
                ),
            }),
            Some(w) if w < 1.0 / limit => findings.push(Regression {
                kind: FindingKind::Improvement,
                path: check.path.clone(),
                baseline: Some(b),
                current: Some(c),
                ratio,
                message: format!(
                    "{}: {c:.4} vs baseline {b:.4} ({:.0}% better)",
                    check.path,
                    (1.0 / w - 1.0) * 100.0
                ),
            }),
            _ => {}
        }
    }
    findings.sort_by_key(|f| match f.kind {
        FindingKind::SchemaDrift => 0,
        FindingKind::PerfRegression => 1,
        FindingKind::Improvement => 2,
    });
    BaselineReport {
        findings,
        threshold_pct,
        checks: checks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two executions of the same app on the same machine; v2 is ~2x
    /// faster on `solve` and has an extra function.
    fn setup() -> PTDataStore {
        let store = PTDataStore::in_memory().unwrap();
        let mut ptdf = String::from(
            "Application IRS\nResource /G grid\nResource /G/M grid/machine\nResource /irs application\nResource /irs-build build\nResource /irs-build/main.c build/module\nResource /irs-build/main.c/solve build/module/function\nResource /irs-build/main.c/init build/module/function\nResource /irs-build/main.c/extra build/module/function\n",
        );
        for (exec, scale) in [("v1", 1.0f64), ("v2", 0.5)] {
            ptdf.push_str(&format!("Execution {exec} IRS\n"));
            ptdf.push_str(&format!("Resource /run-{exec} execution\n"));
            for p in 0..4 {
                ptdf.push_str(&format!("Resource /run-{exec}/p{p} execution/process\n"));
                // Per-process solve time with imbalance: process p takes
                // (10 + p) * scale.
                ptdf.push_str(&format!(
                    "PerfResult {exec} \"/irs,/irs-build/main.c/solve,/run-{exec}/p{p}(primary)\" IRS \"CPU time\" {} seconds\n",
                    (10.0 + p as f64) * scale
                ));
            }
            ptdf.push_str(&format!(
                "PerfResult {exec} \"/irs,/irs-build/main.c/init(primary)\" IRS \"CPU time\" {} seconds\n",
                2.0 * scale
            ));
        }
        // Function only measured in v2.
        ptdf.push_str(
            "PerfResult v2 \"/irs,/irs-build/main.c/extra(primary)\" IRS \"CPU time\" 1.0 seconds\n",
        );
        store.load_ptdf_str(&ptdf).unwrap();
        store
    }

    #[test]
    fn alignment_drops_execution_specific_resources() {
        let store = setup();
        let c = Compare::new(&store);
        let rows = c.rows_of_execution("v1").unwrap();
        let solve_row = rows.iter().find(|r| r.value == 10.0).expect("p0 solve row");
        let key = c.alignment_key(solve_row).unwrap();
        assert!(key.contains("solve"));
        assert!(
            !key.contains("p0"),
            "process resource must be dropped: {key}"
        );
        assert!(!key.contains("run-v1"));
    }

    #[test]
    fn compare_executions_reports_speedup() {
        let store = setup();
        let c = Compare::new(&store);
        let report = c.compare_executions("v1", "v2").unwrap();
        // Aligned keys: solve (collapsed over 4 processes) and init.
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.only_in_a, 0);
        assert_eq!(report.only_in_b, 1, "extra function only in v2");
        for row in &report.rows {
            let q = row.ratio.unwrap();
            assert!(
                (q - 0.5).abs() < 1e-9,
                "v2 should be exactly 2x faster: {row:?}"
            );
            assert!(row.difference < 0.0);
        }
        let gm = report.geo_mean_ratio().unwrap();
        assert!((gm - 0.5).abs() < 1e-9);
        // Regression/improvement classification.
        assert!(report.regressions(1.1).is_empty());
        assert_eq!(report.improvements(1.1).len(), 2);
        // Reverse direction flags regressions.
        let reverse = c.compare_executions("v2", "v1").unwrap();
        assert_eq!(reverse.regressions(1.1).len(), 2);
    }

    #[test]
    fn load_balance_min_max() {
        let store = setup();
        let c = Compare::new(&store);
        let engine = QueryEngine::new(&store);
        // All solve rows (per-process) across both executions.
        let rows: Vec<ResultRow> = engine
            .run(&[
                perftrack_model::ResourceFilter::by_name("/irs-build/main.c/solve")
                    .relatives(perftrack_model::Relatives::Neither),
            ])
            .unwrap();
        assert_eq!(rows.len(), 8);
        let lb = c.load_balance(&rows);
        assert_eq!(lb.len(), 2);
        let v1 = lb.iter().find(|g| g.label == "v1").unwrap();
        assert_eq!(v1.n, 4);
        assert_eq!(v1.min, 10.0);
        assert_eq!(v1.max, 13.0);
        assert!((v1.mean - 11.5).abs() < 1e-9);
        assert!((v1.imbalance.unwrap() - 1.3).abs() < 1e-9);
        let v2 = lb.iter().find(|g| g.label == "v2").unwrap();
        assert_eq!(v2.min, 5.0);
        assert_eq!(v2.max, 6.5);
    }

    #[test]
    fn zero_baseline_has_no_ratio() {
        let store = PTDataStore::in_memory().unwrap();
        store
            .load_ptdf_str(
                "Application A\nResource /r application\nExecution a A\nExecution b A\nPerfResult a /r(primary) T m 0.0 s\nPerfResult b /r(primary) T m 5.0 s\n",
            )
            .unwrap();
        let c = Compare::new(&store);
        let report = c.compare_executions("a", "b").unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].ratio, None);
        assert_eq!(report.rows[0].difference, 5.0);
        assert_eq!(report.geo_mean_ratio(), None);
    }

    #[test]
    fn tree_compare_aligns_and_ranks() {
        let store = setup();
        let c = Compare::new(&store);
        let t = c
            .tree_compare(&["v1", "v2"], &CompareOptions::default())
            .unwrap();
        assert_eq!(t.executions, vec!["v1", "v2"]);
        // solve, init, and /irs are measured in both; extra only in v2.
        let extra = t
            .drift
            .iter()
            .find(|d| d.resource.ends_with("/extra"))
            .expect("extra is presence drift");
        assert_eq!(extra.present, vec![false, true]);
        // Every fully-aligned cell halves, so all ranked cells have
        // ratio 0.5 and identical score.
        let solve = t
            .ranked
            .iter()
            .find(|r| r.resource.ends_with("/solve"))
            .expect("solve is ranked");
        assert_eq!(solve.metric, "CPU time");
        assert!((solve.ratio.unwrap() - 0.5).abs() < 1e-9);
        assert!((solve.score - 2.0f64.ln()).abs() < 1e-9);
        assert!(solve.delta < 0.0);
        // Per-process mean: v1 = 11.5, v2 = 5.75.
        assert!((solve.values[0].unwrap() - 11.5).abs() < 1e-9);
        assert!((solve.values[1].unwrap() - 5.75).abs() < 1e-9);
        // The merged tree contains the build hierarchy with children.
        let build = t
            .roots
            .iter()
            .find(|r| r.name == "/irs-build")
            .expect("build root");
        assert_eq!(build.children.len(), 1, "main.c under the build root");
        assert_eq!(build.children[0].children.len(), 3, "three functions");
        // v2 got strictly faster: improvements, no regressions.
        assert!(t.regressions().is_empty());
        assert!(!t.improvements().is_empty());
    }

    #[test]
    fn tree_compare_self_is_zero() {
        let store = setup();
        let c = Compare::new(&store);
        let t = c
            .tree_compare(&["v1", "v1"], &CompareOptions::default())
            .unwrap();
        assert_eq!(t.ranked_total, 0, "self-compare has no divergence");
        assert!(t.drift.is_empty());
        assert!(t.regressions().is_empty());
    }

    #[test]
    fn tree_compare_share_normalization_cancels_uniform_speedup() {
        let store = setup();
        let c = Compare::new(&store);
        let opts = CompareOptions {
            normalization: Normalization::Share,
            ..CompareOptions::default()
        };
        let t = c.tree_compare(&["v1", "v2"], &opts).unwrap();
        // v2 is uniformly 2x faster on the fully-aligned cells, so their
        // *shares* of total CPU time barely move; the only divergence
        // left comes from the extra function shifting the v2 total.
        for r in &t.ranked {
            assert!(
                r.score < 2.0f64.ln(),
                "share normalization should shrink a uniform speedup: {r:?}"
            );
        }
    }

    #[test]
    fn tree_compare_aggregates() {
        let store = setup();
        let c = Compare::new(&store);
        for (agg, v1_expect) in [
            (Aggregate::Min, 10.0),
            (Aggregate::Max, 13.0),
            (Aggregate::Sum, 46.0),
            (Aggregate::Mean, 11.5),
        ] {
            let opts = CompareOptions {
                aggregate: agg,
                ..CompareOptions::default()
            };
            let t = c.tree_compare(&["v1", "v2"], &opts).unwrap();
            let solve = t
                .ranked
                .iter()
                .find(|r| r.resource.ends_with("/solve"))
                .unwrap();
            assert!(
                (solve.values[0].unwrap() - v1_expect).abs() < 1e-9,
                "{agg:?}: {solve:?}"
            );
        }
    }

    #[test]
    fn tree_compare_json_contract() {
        let store = setup();
        let c = Compare::new(&store);
        let t = c
            .tree_compare(&["v1", "v2"], &CompareOptions::default())
            .unwrap();
        let doc = Json::parse(&t.to_json().emit()).unwrap();
        assert_eq!(doc.get("schema"), Some(&Json::Str("pt-compare/v1".into())));
        assert!(matches!(doc.get("executions"), Some(Json::Arr(a)) if a.len() == 2));
        assert!(matches!(doc.get("ranked"), Some(Json::Arr(a)) if !a.is_empty()));
        assert!(matches!(doc.get("drift"), Some(Json::Arr(a)) if a.len() == 1));
        let table = t.render_table();
        assert!(table.contains("RESOURCE"));
        assert!(table.contains("/solve"));
        assert!(table.contains("only in v2"));
    }

    #[test]
    fn baseline_gate_classifies_findings() {
        let base = Json::parse(
            r#"{"load":{"statements_per_sec":1000.0},"query":{"pr_filter":{"avg_micros":50.0}}}"#,
        )
        .unwrap();
        let checks = [
            BaselineCheck::new("load.statements_per_sec", Direction::HigherIsBetter),
            BaselineCheck::new("query.pr_filter.avg_micros", Direction::LowerIsBetter),
        ];
        // Within threshold: clean.
        let same = evaluate_baseline(&base, &base, &checks, 25.0);
        assert!(!same.has_regressions() && !same.has_drift());
        assert!(same.findings.is_empty());
        // Throughput halves and latency triples: two regressions.
        let worse = Json::parse(
            r#"{"load":{"statements_per_sec":500.0},"query":{"pr_filter":{"avg_micros":150.0}}}"#,
        )
        .unwrap();
        let report = evaluate_baseline(&base, &worse, &checks, 25.0);
        assert!(report.has_regressions());
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|f| f.kind == FindingKind::PerfRegression)
                .count(),
            2
        );
        // Missing path: schema drift, not a regression.
        let drifted = Json::parse(r#"{"load":{"renamed":1.0}}"#).unwrap();
        let report = evaluate_baseline(&base, &drifted, &checks, 25.0);
        assert!(report.has_drift());
        assert!(!report.has_regressions());
        // Both directions see improvements symmetrically.
        let better = Json::parse(
            r#"{"load":{"statements_per_sec":4000.0},"query":{"pr_filter":{"avg_micros":10.0}}}"#,
        )
        .unwrap();
        let report = evaluate_baseline(&base, &better, &checks, 25.0);
        assert!(!report.has_regressions());
        assert_eq!(
            report
                .findings
                .iter()
                .filter(|f| f.kind == FindingKind::Improvement)
                .count(),
            2
        );
        // JSON contract.
        let doc = Json::parse(&report.to_json().emit()).unwrap();
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str("pt-compare-baseline/v1".into()))
        );
        assert!(matches!(doc.get("findings"), Some(Json::Arr(a)) if a.len() == 2));
    }
}
