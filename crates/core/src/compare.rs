//! Comparison operators across executions (§6 lists these as the
//! enhancement "in progress"; they are grounded in the comparison-based
//! diagnosis line of work the paper builds on, Karavanic & Miller).
//!
//! Two executions rarely share context resources verbatim — process and
//! time resources are execution-specific — so results are aligned on a
//! *normalized key*: the metric plus the base names of context resources
//! whose hierarchy is structural (build, environment, grid,
//! application, ...), dropping the per-run `execution` and `time`
//! hierarchies. Difference/ratio operators and a load-balance summary
//! (the Figure 5 computation) operate on aligned pairs.

use crate::datastore::PTDataStore;
use crate::error::Result;
use crate::query::{QueryEngine, ResultRow};
use std::collections::{BTreeMap, HashMap};

/// An aligned pair of results from two executions.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Human-readable alignment key: `metric @ resource,resource,...`.
    pub key: String,
    pub value_a: f64,
    pub value_b: f64,
    /// `value_b - value_a`.
    pub difference: f64,
    /// `value_b / value_a` (`None` when `value_a == 0`).
    pub ratio: Option<f64>,
}

/// Summary of a comparison between two executions.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    pub execution_a: String,
    pub execution_b: String,
    pub rows: Vec<ComparisonRow>,
    /// Results in A with no aligned partner in B.
    pub only_in_a: usize,
    /// Results in B with no aligned partner in A.
    pub only_in_b: usize,
}

impl ComparisonReport {
    /// Rows where B is slower than A by more than `threshold_ratio`
    /// (regressions when A is the baseline).
    pub fn regressions(&self, threshold_ratio: f64) -> Vec<&ComparisonRow> {
        self.rows
            .iter()
            .filter(|r| r.ratio.is_some_and(|q| q > threshold_ratio))
            .collect()
    }

    /// Rows where B is faster than A by more than the reciprocal of
    /// `threshold_ratio`.
    pub fn improvements(&self, threshold_ratio: f64) -> Vec<&ComparisonRow> {
        self.rows
            .iter()
            .filter(|r| r.ratio.is_some_and(|q| q < 1.0 / threshold_ratio))
            .collect()
    }

    /// Geometric-mean ratio over aligned rows with positive values — an
    /// overall speedup/slowdown factor of B relative to A.
    pub fn geo_mean_ratio(&self) -> Option<f64> {
        let logs: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| r.ratio)
            .filter(|q| *q > 0.0)
            .map(f64::ln)
            .collect();
        if logs.is_empty() {
            None
        } else {
            Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
        }
    }
}

/// One group of the load-balance summary (Figure 5: one process count).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalanceRow {
    /// Group label (typically the execution or its process count).
    pub label: String,
    pub n: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    /// `max / min` (`None` if min is 0) — the paper's "rough indication of
    /// load balance".
    pub imbalance: Option<f64>,
}

/// Comparison engine over a data store.
pub struct Compare<'s> {
    store: &'s PTDataStore,
}

impl<'s> Compare<'s> {
    /// Bind to a store.
    pub fn new(store: &'s PTDataStore) -> Self {
        Compare { store }
    }

    /// All result rows of one execution.
    pub fn rows_of_execution(&self, execution: &str) -> Result<Vec<ResultRow>> {
        let engine = QueryEngine::new(self.store);
        let all = engine.run(&[])?;
        Ok(all
            .into_iter()
            .filter(|r| r.execution == execution)
            .collect())
    }

    /// The normalized alignment key of a result: metric plus sorted base
    /// names of structural context resources (execution/time hierarchies
    /// dropped).
    pub fn alignment_key(&self, row: &ResultRow) -> Result<String> {
        let engine = QueryEngine::new(self.store);
        let types = engine.type_path_by_id()?;
        self.alignment_key_with(row, &types)
    }

    /// [`Compare::alignment_key`] with a pre-built type map, so per-row
    /// callers (the comparison loop) scan the type table once, not per row.
    fn alignment_key_with(
        &self,
        row: &ResultRow,
        types: &std::collections::HashMap<i64, String>,
    ) -> Result<String> {
        let mut parts: Vec<String> = Vec::new();
        for &rid in &row.context {
            if let Some(rec) = self.store.resource_by_id(rid)? {
                let tp = types.get(&rec.type_id).cloned().unwrap_or_default();
                let root = tp.split('/').next().unwrap_or("");
                if root == "execution" || root == "time" {
                    continue;
                }
                parts.push(rec.base_name);
            }
        }
        parts.sort();
        parts.dedup();
        Ok(format!("{} @ {}", row.metric, parts.join(",")))
    }

    /// Align and compare two executions.
    pub fn compare_executions(&self, exec_a: &str, exec_b: &str) -> Result<ComparisonReport> {
        let rows_a = self.rows_of_execution(exec_a)?;
        let rows_b = self.rows_of_execution(exec_b)?;
        let types = QueryEngine::new(self.store).type_path_by_id()?;
        // Key → mean value (several rows can share a normalized key, e.g.
        // per-process results collapse when process resources are dropped).
        let collapse = |rows: &[ResultRow]| -> Result<HashMap<String, (f64, usize)>> {
            let mut m: HashMap<String, (f64, usize)> = HashMap::new();
            for r in rows {
                let key = self.alignment_key_with(r, &types)?;
                let e = m.entry(key).or_insert((0.0, 0));
                e.0 += r.value;
                e.1 += 1;
            }
            Ok(m)
        };
        let map_a = collapse(&rows_a)?;
        let map_b = collapse(&rows_b)?;
        let mut rows = Vec::new();
        let mut only_in_a = 0usize;
        for (key, (sum_a, n_a)) in &map_a {
            match map_b.get(key) {
                Some((sum_b, n_b)) => {
                    let value_a = sum_a / *n_a as f64;
                    let value_b = sum_b / *n_b as f64;
                    rows.push(ComparisonRow {
                        key: key.clone(),
                        value_a,
                        value_b,
                        difference: value_b - value_a,
                        ratio: (value_a != 0.0).then(|| value_b / value_a),
                    });
                }
                None => only_in_a += 1,
            }
        }
        let only_in_b = map_b
            .keys()
            .filter(|k| !map_a.contains_key(k.as_str()))
            .count();
        rows.sort_by(|x, y| x.key.cmp(&y.key));
        Ok(ComparisonReport {
            execution_a: exec_a.to_string(),
            execution_b: exec_b.to_string(),
            rows,
            only_in_a,
            only_in_b,
        })
    }

    /// Load-balance summary (Figure 5): group `rows` (already filtered to
    /// one metric, typically one function) by execution and report
    /// min/max/mean across the group — e.g. across a run's processors.
    pub fn load_balance(&self, rows: &[ResultRow]) -> Vec<LoadBalanceRow> {
        let mut groups: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for r in rows {
            groups.entry(r.execution.clone()).or_default().push(r.value);
        }
        groups
            .into_iter()
            .map(|(label, values)| {
                let n = values.len();
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mean = values.iter().sum::<f64>() / n as f64;
                LoadBalanceRow {
                    label,
                    n,
                    min,
                    max,
                    mean,
                    imbalance: (min != 0.0).then(|| max / min),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two executions of the same app on the same machine; v2 is ~2x
    /// faster on `solve` and has an extra function.
    fn setup() -> PTDataStore {
        let store = PTDataStore::in_memory().unwrap();
        let mut ptdf = String::from(
            "Application IRS\nResource /G grid\nResource /G/M grid/machine\nResource /irs application\nResource /irs-build build\nResource /irs-build/main.c build/module\nResource /irs-build/main.c/solve build/module/function\nResource /irs-build/main.c/init build/module/function\nResource /irs-build/main.c/extra build/module/function\n",
        );
        for (exec, scale) in [("v1", 1.0f64), ("v2", 0.5)] {
            ptdf.push_str(&format!("Execution {exec} IRS\n"));
            ptdf.push_str(&format!("Resource /run-{exec} execution\n"));
            for p in 0..4 {
                ptdf.push_str(&format!("Resource /run-{exec}/p{p} execution/process\n"));
                // Per-process solve time with imbalance: process p takes
                // (10 + p) * scale.
                ptdf.push_str(&format!(
                    "PerfResult {exec} \"/irs,/irs-build/main.c/solve,/run-{exec}/p{p}(primary)\" IRS \"CPU time\" {} seconds\n",
                    (10.0 + p as f64) * scale
                ));
            }
            ptdf.push_str(&format!(
                "PerfResult {exec} \"/irs,/irs-build/main.c/init(primary)\" IRS \"CPU time\" {} seconds\n",
                2.0 * scale
            ));
        }
        // Function only measured in v2.
        ptdf.push_str(
            "PerfResult v2 \"/irs,/irs-build/main.c/extra(primary)\" IRS \"CPU time\" 1.0 seconds\n",
        );
        store.load_ptdf_str(&ptdf).unwrap();
        store
    }

    #[test]
    fn alignment_drops_execution_specific_resources() {
        let store = setup();
        let c = Compare::new(&store);
        let rows = c.rows_of_execution("v1").unwrap();
        let solve_row = rows.iter().find(|r| r.value == 10.0).expect("p0 solve row");
        let key = c.alignment_key(solve_row).unwrap();
        assert!(key.contains("solve"));
        assert!(
            !key.contains("p0"),
            "process resource must be dropped: {key}"
        );
        assert!(!key.contains("run-v1"));
    }

    #[test]
    fn compare_executions_reports_speedup() {
        let store = setup();
        let c = Compare::new(&store);
        let report = c.compare_executions("v1", "v2").unwrap();
        // Aligned keys: solve (collapsed over 4 processes) and init.
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.only_in_a, 0);
        assert_eq!(report.only_in_b, 1, "extra function only in v2");
        for row in &report.rows {
            let q = row.ratio.unwrap();
            assert!(
                (q - 0.5).abs() < 1e-9,
                "v2 should be exactly 2x faster: {row:?}"
            );
            assert!(row.difference < 0.0);
        }
        let gm = report.geo_mean_ratio().unwrap();
        assert!((gm - 0.5).abs() < 1e-9);
        // Regression/improvement classification.
        assert!(report.regressions(1.1).is_empty());
        assert_eq!(report.improvements(1.1).len(), 2);
        // Reverse direction flags regressions.
        let reverse = c.compare_executions("v2", "v1").unwrap();
        assert_eq!(reverse.regressions(1.1).len(), 2);
    }

    #[test]
    fn load_balance_min_max() {
        let store = setup();
        let c = Compare::new(&store);
        let engine = QueryEngine::new(&store);
        // All solve rows (per-process) across both executions.
        let rows: Vec<ResultRow> = engine
            .run(&[
                perftrack_model::ResourceFilter::by_name("/irs-build/main.c/solve")
                    .relatives(perftrack_model::Relatives::Neither),
            ])
            .unwrap();
        assert_eq!(rows.len(), 8);
        let lb = c.load_balance(&rows);
        assert_eq!(lb.len(), 2);
        let v1 = lb.iter().find(|g| g.label == "v1").unwrap();
        assert_eq!(v1.n, 4);
        assert_eq!(v1.min, 10.0);
        assert_eq!(v1.max, 13.0);
        assert!((v1.mean - 11.5).abs() < 1e-9);
        assert!((v1.imbalance.unwrap() - 1.3).abs() < 1e-9);
        let v2 = lb.iter().find(|g| g.label == "v2").unwrap();
        assert_eq!(v2.min, 5.0);
        assert_eq!(v2.max, 6.5);
    }

    #[test]
    fn zero_baseline_has_no_ratio() {
        let store = PTDataStore::in_memory().unwrap();
        store
            .load_ptdf_str(
                "Application A\nResource /r application\nExecution a A\nExecution b A\nPerfResult a /r(primary) T m 0.0 s\nPerfResult b /r(primary) T m 5.0 s\n",
            )
            .unwrap();
        let c = Compare::new(&store);
        let report = c.compare_executions("a", "b").unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].ratio, None);
        assert_eq!(report.rows[0].difference, 5.0);
        assert_eq!(report.geo_mean_ratio(), None);
    }
}
