//! Unified error type for the PerfTrack core crate.

use perftrack_model::ModelError;
use perftrack_ptdf::PtdfError;
use perftrack_store::StoreError;
use std::fmt;

/// Errors surfaced by the PerfTrack data store and query layers.
#[derive(Debug)]
pub enum PtError {
    /// Underlying storage engine error.
    Store(StoreError),
    /// Model-rule violation (bad names, type hierarchy mismatches, ...).
    Model(ModelError),
    /// PTdf syntax error.
    Ptdf(PtdfError),
    /// File I/O error.
    Io(std::io::Error),
    /// A referenced entity does not exist.
    NotFound(String),
    /// Request was structurally invalid.
    Invalid(String),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::Store(e) => write!(f, "store: {e}"),
            PtError::Model(e) => write!(f, "model: {e}"),
            PtError::Ptdf(e) => write!(f, "{e}"),
            PtError::Io(e) => write!(f, "i/o: {e}"),
            PtError::NotFound(m) => write!(f, "not found: {m}"),
            PtError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for PtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PtError::Store(e) => Some(e),
            PtError::Model(e) => Some(e),
            PtError::Ptdf(e) => Some(e),
            PtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for PtError {
    fn from(e: StoreError) -> Self {
        PtError::Store(e)
    }
}
impl From<ModelError> for PtError {
    fn from(e: ModelError) -> Self {
        PtError::Model(e)
    }
}
impl From<PtdfError> for PtError {
    fn from(e: PtdfError) -> Self {
        PtError::Ptdf(e)
    }
}
impl From<std::io::Error> for PtError {
    fn from(e: std::io::Error) -> Self {
        PtError::Io(e)
    }
}

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, PtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PtError = StoreError::RowNotFound.into();
        assert!(e.to_string().contains("row not found"));
        let e: PtError = ModelError::UnknownType("x".into()).into();
        assert!(e.to_string().contains("unknown resource type"));
        let e: PtError = PtdfError::new(3, "bad".into()).into();
        assert!(e.to_string().contains("line 3"));
        let e = PtError::NotFound("metric q".into());
        assert!(e.to_string().contains("metric q"));
    }
}
