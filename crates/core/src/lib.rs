//! # perftrack
//!
//! PerfTrack: a performance experiment management tool (Karavanic et al.,
//! SC|05), reimplemented in Rust on an embedded relational engine. This
//! crate is the paper's primary contribution: the DBMS-backed data store
//! ([`datastore::PTDataStore`]), the Figure 1 schema ([`schema`]), the
//! pr-filter query engine ([`query`]), the GUI session model
//! ([`session`]), and cross-execution comparison operators ([`compare`]).

pub mod chart;
pub mod compare;
pub mod datastore;
pub mod error;
pub mod fsck;
pub mod planner;
pub mod predict;
pub mod query;
pub mod reports;
pub mod schema;
pub mod session;

pub use chart::{BarChart, Series};
pub use compare::{
    evaluate_baseline, Aggregate, AlignedNode, BaselineCheck, BaselineReport, Compare,
    CompareOptions, ComparisonReport, ComparisonRow, Direction, DivergentResource, FindingKind,
    LoadBalanceRow, Normalization, PresenceDrift, Regression, TreeComparison,
};
pub use datastore::{
    BulkLoadOptions, LoadReport, LoadStats, Loader, ManifestEntry, PTDataStore, ResourceRecord,
};
pub use error::{PtError, Result};
pub use perftrack_store::check::{Finding, FsckReport, Severity};
pub use perftrack_store::metrics::{Json, MetricsSnapshot, OperatorProfile, QueryProfile};
pub use perftrack_store::planner::{ExplainNode, ExplainPlan};
pub use planner::{explain_filters, plan_filters, FilterPlan, PrFilterPlan};
pub use predict::{Observation, PredictionCheck, Predictor, ScalingModel};
pub use query::{ExpandStrategy, FreeResourceColumn, QueryEngine, ResultRow};
pub use reports::{ExecutionDetail, MetricSummary, Reports, ResourceDetail, StoreSummary};
pub use schema::Schema;
pub use session::{DetachedTable, ResultTable, SelectionDialog, BASE_COLUMNS};
