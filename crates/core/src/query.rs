//! The pr-filter query engine over the database (§2.2 semantics, §3.2
//! behaviours): building resource families from filters, matching
//! performance results, live match counts, and *free resource* discovery
//! for the GUI's two-step column selection.

use crate::datastore::{decode_resource, PTDataStore, ResourceRecord};
use crate::error::{PtError, Result};
use crate::planner::{explain_filters, plan_filters};
use crate::schema::col;
use parking_lot::Mutex;
use perftrack_model::{AttrPredicate, Relatives, ResourceFilter, Selector};
use perftrack_store::metrics::{OperatorProfile, QueryProfile};
use perftrack_store::planner::{ExplainPlan, COST_FETCH_ROW, COST_PROBE, COST_SCAN_ROW};
use perftrack_store::{StatsState, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// How ancestor/descendant expansion is computed — the design choice the
/// paper calls out ("added for performance reasons") and the
/// closure-ablation bench measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpandStrategy {
    /// Use the `resource_has_ancestor` / `resource_has_descendant` closure
    /// tables (the paper's choice).
    #[default]
    ClosureTable,
    /// Follow `parent_id` chains with index lookups (the alternative the
    /// closure tables were added to avoid).
    ParentWalk,
}

/// One matched performance result, denormalized for display.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    pub result_id: i64,
    pub execution: String,
    pub metric: String,
    pub value: f64,
    pub units: String,
    pub tool: String,
    /// Resource ids in the result's context (union of its foci).
    pub context: Vec<i64>,
}

/// A candidate "Add Columns" entry: a free resource type whose values vary
/// across the displayed results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeResourceColumn {
    pub type_path: String,
    /// Distinct resource base names observed across the results.
    pub distinct_values: usize,
    /// Attribute names available on those resources.
    pub attributes: Vec<String>,
}

/// Per-family and whole-filter match counts (GUI live counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchCounts {
    pub per_family: Vec<usize>,
    pub whole: usize,
}

/// Query engine bound to a data store.
///
/// The engine lazily caches the result-context map (the join of `focus`
/// and `focus_has_resource`), which every matching and counting operation
/// needs. An engine is therefore a cheap *snapshot view*: create a fresh
/// one after loading new data.
/// Cached result-id → context-resource-ids map.
type ContextMap = Arc<HashMap<i64, Vec<i64>>>;

pub struct QueryEngine<'s> {
    store: &'s PTDataStore,
    strategy: ExpandStrategy,
    context_cache: Mutex<Option<ContextMap>>,
}

impl<'s> QueryEngine<'s> {
    /// Engine with the default (closure table) expansion strategy.
    pub fn new(store: &'s PTDataStore) -> Self {
        QueryEngine {
            store,
            strategy: ExpandStrategy::ClosureTable,
            context_cache: Mutex::new(None),
        }
    }

    /// Engine with an explicit expansion strategy (benches).
    pub fn with_strategy(store: &'s PTDataStore, strategy: ExpandStrategy) -> Self {
        QueryEngine {
            store,
            strategy,
            context_cache: Mutex::new(None),
        }
    }

    // -- family construction -------------------------------------------------

    /// Apply a resource filter, producing the family as a set of resource
    /// ids.
    pub fn family(&self, filter: &ResourceFilter) -> Result<HashSet<i64>> {
        let db = self.store.db();
        let schema = self.store.schema();
        let seed: Vec<i64> = match &filter.selector {
            Selector::ByType(tp) => {
                let type_id = self
                    .store
                    .type_id(tp.as_str())
                    .ok_or_else(|| PtError::NotFound(format!("type {tp}")))?;
                let idx = db.index_id("resource_item_type")?;
                let rids = db.index_lookup(idx, &[Value::Int(type_id)])?;
                rids.iter()
                    .map(|&rid| Ok(decode_resource(&db.get(schema.resource_item, rid)?).id))
                    .collect::<Result<Vec<_>>>()?
            }
            Selector::ByName(pattern) => {
                if pattern.starts_with('/') {
                    // Exact full-name lookup.
                    match self.store.resource_by_name(pattern)? {
                        Some(r) => vec![r.id],
                        None => vec![],
                    }
                } else {
                    // Shorthand: resolve via the base-name index, then
                    // verify the suffix.
                    let base = pattern.rsplit('/').next().unwrap_or(pattern);
                    let idx = db.index_id("resource_item_base")?;
                    let rids = db.index_lookup(idx, &[Value::Text(base.to_string())])?;
                    let mut out = Vec::new();
                    for rid in rids {
                        let rec = decode_resource(&db.get(schema.resource_item, rid)?);
                        let rn = perftrack_model::ResourceName::new(&rec.name)
                            .map_err(PtError::Model)?;
                        if rn.matches_shorthand(pattern) {
                            out.push(rec.id);
                        }
                    }
                    out
                }
            }
            Selector::ByAttrs(preds) => self.resources_matching_attrs(preds)?,
        };
        let mut family: HashSet<i64> = seed.iter().copied().collect();
        if matches!(filter.relatives, Relatives::Ancestors | Relatives::Both) {
            match self.strategy {
                ExpandStrategy::ClosureTable => self.expand_closure_batch(
                    "rha_resource",
                    schema.resource_has_ancestor,
                    col::resource_has_ancestor::RESOURCE_ID,
                    col::resource_has_ancestor::ANCESTOR_ID,
                    &seed,
                    &mut family,
                )?,
                ExpandStrategy::ParentWalk => {
                    for &id in &seed {
                        self.collect_ancestors_walk(id, &mut family)?;
                    }
                }
            }
        }
        if matches!(filter.relatives, Relatives::Descendants | Relatives::Both) {
            match self.strategy {
                ExpandStrategy::ClosureTable => self.expand_closure_batch(
                    "rhd_resource",
                    schema.resource_has_descendant,
                    col::resource_has_descendant::RESOURCE_ID,
                    col::resource_has_descendant::DESCENDANT_ID,
                    &seed,
                    &mut family,
                )?,
                ExpandStrategy::ParentWalk => {
                    self.collect_descendants_walk(&seed.iter().copied().collect(), &mut family)?;
                }
            }
        }
        Ok(family)
    }

    fn resources_matching_attrs(&self, preds: &[AttrPredicate]) -> Result<Vec<i64>> {
        if preds.is_empty() {
            return Ok(Vec::new());
        }
        let db = self.store.db();
        let schema = self.store.schema();
        // Drive from the first predicate via the attribute-name index.
        let idx = db.index_id("resource_attribute_name")?;
        let rids = db.index_lookup(idx, &[Value::Text(preds[0].attr.clone())])?;
        let mut candidates: HashSet<i64> = HashSet::new();
        for rid in rids {
            let row = db.get(schema.resource_attribute, rid)?;
            let value = row[col::resource_attribute::VALUE].as_text()?;
            if preds[0].cmp.apply(value, &preds[0].value) {
                candidates.insert(row[col::resource_attribute::RESOURCE_ID].as_int()?);
            }
        }
        // Check remaining predicates against each candidate's attributes.
        let mut out = Vec::new();
        'cand: for rid in candidates {
            for p in &preds[1..] {
                let attrs = self.store.attributes_of(rid)?;
                let ok = attrs
                    .iter()
                    .any(|(n, v, _)| n == &p.attr && p.cmp.apply(v, &p.value));
                if !ok {
                    continue 'cand;
                }
            }
            out.push(rid);
        }
        Ok(out)
    }

    /// Closure-table expansion for a whole seed set at once.
    ///
    /// With fresh statistics, the expansion is itself planned: a batched
    /// B+tree probe costs `seeds × (probe + fanout × fetch)`, a scan of
    /// the closure table costs one unit per row. Large seed sets over
    /// small closure tables take the scan; everything else (including
    /// every un-ANALYZEd store) takes the batched probe, exactly as
    /// before the planner existed.
    fn expand_closure_batch(
        &self,
        index_name: &str,
        table: perftrack_store::TableId,
        seed_col: usize,
        relative_col: usize,
        seeds: &[i64],
        into: &mut HashSet<i64>,
    ) -> Result<()> {
        if seeds.is_empty() {
            return Ok(());
        }
        let db = self.store.db();
        let idx = db.index_id(index_name)?;
        if let (StatsState::Fresh(rows), Some(fanout)) =
            (db.table_stats_state(table), db.index_avg_fanout(idx))
        {
            let probe_cost = seeds.len() as f64 * (COST_PROBE + fanout * COST_FETCH_ROW);
            if rows as f64 * COST_SCAN_ROW < probe_cost {
                let seed_set: HashSet<i64> = seeds.iter().copied().collect();
                let mut bad = None;
                db.for_each_row(table, |_, row| {
                    match (row[seed_col].as_int(), row[relative_col].as_int()) {
                        (Ok(rid), Ok(rel)) => {
                            if seed_set.contains(&rid) {
                                into.insert(rel);
                            }
                            true
                        }
                        (Err(e), _) | (_, Err(e)) => {
                            bad = Some(e);
                            false
                        }
                    }
                })?;
                return match bad {
                    Some(e) => Err(e.into()),
                    None => Ok(()),
                };
            }
        }
        let keys: Vec<Vec<Value>> = seeds.iter().map(|&id| vec![Value::Int(id)]).collect();
        for rids in db.index_lookup_many(idx, &keys)? {
            for rid in rids {
                let row = db.get(table, rid)?;
                into.insert(row[relative_col].as_int()?);
            }
        }
        Ok(())
    }

    fn collect_ancestors_walk(&self, id: i64, into: &mut HashSet<i64>) -> Result<()> {
        let mut cur = self.store.resource_by_id(id)?.and_then(|r| r.parent_id);
        while let Some(pid) = cur {
            into.insert(pid);
            cur = self.store.resource_by_id(pid)?.and_then(|r| r.parent_id);
        }
        Ok(())
    }

    /// Without closure tables: scan every resource and climb its parent
    /// chain looking for a seed — the exact query pattern the paper's
    /// closure tables exist to avoid.
    fn collect_descendants_walk(
        &self,
        seeds: &HashSet<i64>,
        into: &mut HashSet<i64>,
    ) -> Result<()> {
        let db = self.store.db();
        let schema = self.store.schema();
        let mut all: Vec<ResourceRecord> = Vec::new();
        db.for_each_row(schema.resource_item, |_, row| {
            all.push(decode_resource(row));
            true
        })?;
        let parent_of: HashMap<i64, Option<i64>> =
            all.iter().map(|r| (r.id, r.parent_id)).collect();
        for r in &all {
            let mut cur = r.parent_id;
            while let Some(pid) = cur {
                if seeds.contains(&pid) {
                    into.insert(r.id);
                    break;
                }
                cur = parent_of.get(&pid).copied().flatten();
            }
        }
        Ok(())
    }

    // -- matching -------------------------------------------------------------

    /// Map of result id → context resource ids (one pass over focus +
    /// focus_has_resource, cached for the engine's lifetime).
    pub fn result_context_map(&self) -> Result<Arc<HashMap<i64, Vec<i64>>>> {
        if let Some(cached) = self.context_cache.lock().clone() {
            return Ok(cached);
        }
        let built = Arc::new(self.build_context_map()?);
        *self.context_cache.lock() = Some(Arc::clone(&built));
        Ok(built)
    }

    fn build_context_map(&self) -> Result<HashMap<i64, Vec<i64>>> {
        let db = self.store.db();
        let schema = self.store.schema();
        let mut focus_to_result: HashMap<i64, i64> = HashMap::new();
        db.for_each_row(schema.focus, |_, row| {
            if let (Ok(fid), Ok(rid)) = (
                row[col::focus::ID].as_int(),
                row[col::focus::RESULT_ID].as_int(),
            ) {
                focus_to_result.insert(fid, rid);
            }
            true
        })?;
        let mut out: HashMap<i64, Vec<i64>> = HashMap::with_capacity(focus_to_result.len());
        db.for_each_row(schema.focus_has_resource, |_, row| {
            if let (Ok(fid), Ok(res)) = (
                row[col::focus_has_resource::FOCUS_ID].as_int(),
                row[col::focus_has_resource::RESOURCE_ID].as_int(),
            ) {
                if let Some(&result) = focus_to_result.get(&fid) {
                    out.entry(result).or_default().push(res);
                }
            }
            true
        })?;
        // Results whose foci name no resources still exist.
        for (_, rid) in focus_to_result {
            out.entry(rid).or_default();
        }
        for v in out.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Ok(out)
    }

    /// Result ids whose context matches every family (the paper's rule).
    ///
    /// Families are checked smallest-first — the planner's match-order
    /// rule, here with exact cardinalities since the sets are already
    /// materialized — so non-matching contexts fail on the cheapest,
    /// most selective probe. The result set is order-independent.
    pub fn matching_result_ids(&self, families: &[HashSet<i64>]) -> Result<Vec<i64>> {
        let contexts = self.result_context_map()?;
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by_key(|&i| families[i].len());
        let mut ids: Vec<i64> = contexts
            .iter()
            .filter(|(_, ctx)| {
                order
                    .iter()
                    .all(|&i| ctx.iter().any(|r| families[i].contains(r)))
            })
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        Ok(ids)
    }

    /// Live counts: how many results each family matches alone, and how
    /// many match the whole filter (§3.2's query-size feedback).
    pub fn match_counts(&self, families: &[HashSet<i64>]) -> Result<MatchCounts> {
        let contexts = self.result_context_map()?;
        let mut per_family = vec![0usize; families.len()];
        let mut whole = 0usize;
        for ctx in contexts.values() {
            let mut all = true;
            for (i, fam) in families.iter().enumerate() {
                if ctx.iter().any(|r| fam.contains(r)) {
                    per_family[i] += 1;
                } else {
                    all = false;
                }
            }
            if all {
                whole += 1;
            }
        }
        Ok(MatchCounts { per_family, whole })
    }

    /// Full query: build families from filters, match, and denormalize
    /// into displayable rows.
    pub fn run(&self, filters: &[ResourceFilter]) -> Result<Vec<ResultRow>> {
        Ok(self.run_profiled(filters)?.0)
    }

    /// EXPLAIN the pr-filter pipeline without running it: the planned
    /// access path, expansion, and match order per filter, as a
    /// `pt-explain/v1` tree with estimated rows per operator.
    pub fn explain(&self, filters: &[ResourceFilter]) -> ExplainPlan {
        explain_filters(&plan_filters(self.store, filters))
    }

    /// Like [`QueryEngine::run`], but also returns a per-operator profile
    /// of the pr-filter pipeline (operator names documented in
    /// `docs/METRICS.md`): one `family` operator per filter, then
    /// `context-map`, `match`, and `fetch`.
    pub fn run_profiled(
        &self,
        filters: &[ResourceFilter],
    ) -> Result<(Vec<ResultRow>, QueryProfile)> {
        let total_start = Instant::now();
        let mut profile = QueryProfile::default();
        let plan = plan_filters(self.store, filters);
        let planner_metrics = self.store.db().planner_stats();

        let mut families = Vec::with_capacity(filters.len());
        for (i, f) in filters.iter().enumerate() {
            let stage = Instant::now();
            let fam = self.family(f)?;
            let est = plan.filters[i].estimated_family;
            if let Some(e) = est {
                planner_metrics.estimated_rows.add(e);
                planner_metrics.actual_rows.add(fam.len() as u64);
            }
            profile.push(
                OperatorProfile::new(format!("family[{i}]"), 0, fam.len() as u64, stage.elapsed())
                    .with_estimated_rows(est),
            );
            families.push(fam);
        }

        // Context map (cached after the first build; the profile records
        // whatever this call actually cost).
        let stage = Instant::now();
        let contexts = self.result_context_map()?;
        profile.push(
            OperatorProfile::new("context-map", 0, contexts.len() as u64, stage.elapsed())
                .with_estimated_rows(plan.estimated_contexts),
        );

        let stage = Instant::now();
        let ids = self.matching_result_ids(&families)?;
        profile.push(
            OperatorProfile::new(
                "match",
                contexts.len() as u64,
                ids.len() as u64,
                stage.elapsed(),
            )
            .with_estimated_rows(plan.estimated_matches),
        );

        let stage = Instant::now();
        let rows = self.fetch_rows(&ids)?;
        profile.push(
            OperatorProfile::new(
                "fetch",
                ids.len() as u64,
                rows.len() as u64,
                stage.elapsed(),
            )
            .with_estimated_rows(plan.estimated_matches),
        );

        profile.total_nanos = total_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        Ok((rows, profile))
    }

    /// Denormalize result rows by id.
    pub fn fetch_rows(&self, ids: &[i64]) -> Result<Vec<ResultRow>> {
        let db = self.store.db();
        let schema = self.store.schema();
        let contexts = self.result_context_map()?;
        // Reverse maps for names.
        let exec_by_id: HashMap<i64, String> = self.store.executions().into_iter().collect();
        let mut metric_by_id: HashMap<i64, String> = HashMap::new();
        db.for_each_row(schema.metric, |_, row| {
            if let (Ok(id), Ok(name)) = (
                row[col::metric::ID].as_int(),
                row[col::metric::NAME].as_text(),
            ) {
                metric_by_id.insert(id, name.to_string());
            }
            true
        })?;
        let mut tool_by_id: HashMap<i64, String> = HashMap::new();
        db.for_each_row(schema.performance_tool, |_, row| {
            if let (Ok(id), Ok(name)) = (
                row[col::performance_tool::ID].as_int(),
                row[col::performance_tool::NAME].as_text(),
            ) {
                tool_by_id.insert(id, name.to_string());
            }
            true
        })?;
        let idx = db.index_id("performance_result_id")?;
        let mut out = Vec::with_capacity(ids.len());
        // One batched probe resolves every result id in a single tree walk.
        let keys: Vec<Vec<Value>> = ids.iter().map(|&id| vec![Value::Int(id)]).collect();
        let rid_batches = db.index_lookup_many(idx, &keys)?;
        for (&id, rids) in ids.iter().zip(&rid_batches) {
            let Some(&rid) = rids.first() else {
                continue;
            };
            let row = db.get(schema.performance_result, rid)?;
            out.push(ResultRow {
                result_id: id,
                execution: exec_by_id
                    .get(&row[col::performance_result::EXECUTION_ID].as_int()?)
                    .cloned()
                    .unwrap_or_default(),
                metric: metric_by_id
                    .get(&row[col::performance_result::METRIC_ID].as_int()?)
                    .cloned()
                    .unwrap_or_default(),
                value: row[col::performance_result::VALUE].as_real()?,
                units: row[col::performance_result::UNITS].as_text()?.to_string(),
                tool: tool_by_id
                    .get(&row[col::performance_result::TOOL_ID].as_int()?)
                    .cloned()
                    .unwrap_or_default(),
                context: contexts.get(&id).cloned().unwrap_or_default(),
            });
        }
        Ok(out)
    }

    // -- free resources ("Add Columns", §3.2) ---------------------------------

    /// Free resource types for a displayed result set: context resources
    /// the query did not pin, grouped by type, *excluding* types whose
    /// resource names are identical across all results (the GUI hides
    /// those as uninformative).
    pub fn free_resource_types(
        &self,
        rows: &[ResultRow],
        fixed: &[HashSet<i64>],
    ) -> Result<Vec<FreeResourceColumn>> {
        let type_by_id = self.type_path_by_id()?;
        // type path -> set of resource names observed (per result).
        let mut per_type_values: BTreeMap<String, HashSet<String>> = BTreeMap::new();
        let mut per_type_attrs: BTreeMap<String, HashSet<String>> = BTreeMap::new();
        for row in rows {
            for &res_id in &row.context {
                if fixed.iter().any(|f| f.contains(&res_id)) {
                    continue; // user pinned this resource; not "free"
                }
                let Some(rec) = self.store.resource_by_id(res_id)? else {
                    continue;
                };
                let tp = type_by_id.get(&rec.type_id).cloned().unwrap_or_default();
                per_type_values
                    .entry(tp.clone())
                    .or_default()
                    .insert(rec.name.clone());
                for (attr, _, _) in self.store.attributes_of(res_id)? {
                    per_type_attrs.entry(tp.clone()).or_default().insert(attr);
                }
            }
        }
        let mut out = Vec::new();
        for (tp, values) in per_type_values {
            if values.len() <= 1 {
                continue; // identical across results — not shown (§3.2)
            }
            let mut attributes: Vec<String> = per_type_attrs
                .remove(&tp)
                .map(|s| s.into_iter().collect())
                .unwrap_or_default();
            attributes.sort();
            out.push(FreeResourceColumn {
                type_path: tp,
                distinct_values: values.len(),
                attributes,
            });
        }
        Ok(out)
    }

    /// Values for an added column: per result, the base name(s) of context
    /// resources of `type_path` (joined with `+` when several).
    pub fn column_values(
        &self,
        rows: &[ResultRow],
        type_path: &str,
    ) -> Result<Vec<Option<String>>> {
        let type_id = self
            .store
            .type_id(type_path)
            .ok_or_else(|| PtError::NotFound(format!("type {type_path}")))?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut names = Vec::new();
            for &res_id in &row.context {
                if let Some(rec) = self.store.resource_by_id(res_id)? {
                    if rec.type_id == type_id {
                        names.push(rec.base_name);
                    }
                }
            }
            names.sort();
            out.push(if names.is_empty() {
                None
            } else {
                Some(names.join("+"))
            });
        }
        Ok(out)
    }

    /// Values for an added *attribute* column: per result, the attribute
    /// value of the context resource(s) of `type_path`.
    pub fn attr_column_values(
        &self,
        rows: &[ResultRow],
        type_path: &str,
        attr: &str,
    ) -> Result<Vec<Option<String>>> {
        let type_id = self
            .store
            .type_id(type_path)
            .ok_or_else(|| PtError::NotFound(format!("type {type_path}")))?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut values = Vec::new();
            for &res_id in &row.context {
                if let Some(rec) = self.store.resource_by_id(res_id)? {
                    if rec.type_id == type_id {
                        for (name, value, _) in self.store.attributes_of(res_id)? {
                            if name == attr {
                                values.push(value);
                            }
                        }
                    }
                }
            }
            values.sort();
            values.dedup();
            out.push(if values.is_empty() {
                None
            } else {
                Some(values.join("+"))
            });
        }
        Ok(out)
    }

    /// type id → type path map.
    pub fn type_path_by_id(&self) -> Result<HashMap<i64, String>> {
        let db = self.store.db();
        let schema = self.store.schema();
        let mut out = HashMap::new();
        db.for_each_row(schema.focus_framework, |_, row| {
            if let (Ok(id), Ok(path)) = (
                row[col::focus_framework::ID].as_int(),
                row[col::focus_framework::TYPE_PATH].as_text(),
            ) {
                out.insert(id, path.to_string());
            }
            true
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perftrack_model::TypePath;

    /// Two machines, an application, processor- and machine-level results.
    fn setup() -> PTDataStore {
        let store = PTDataStore::in_memory().unwrap();
        let mut ptdf = String::from("Application IRS\n");
        for (grid, machine) in [("GFrost", "Frost"), ("GMcr", "MCR")] {
            ptdf.push_str(&format!("Resource /{grid} grid\n"));
            ptdf.push_str(&format!("Resource /{grid}/{machine} grid/machine\n"));
            ptdf.push_str(&format!(
                "Resource /{grid}/{machine}/batch grid/machine/partition\n"
            ));
            for n in 0..2 {
                ptdf.push_str(&format!(
                    "Resource /{grid}/{machine}/batch/node{n} grid/machine/partition/node\n"
                ));
                ptdf.push_str(&format!(
                    "ResourceAttribute /{grid}/{machine}/batch/node{n} memoryGB {} string\n",
                    8 * (n + 1)
                ));
                for p in 0..2 {
                    ptdf.push_str(&format!(
                        "Resource /{grid}/{machine}/batch/node{n}/p{p} grid/machine/partition/node/processor\n"
                    ));
                }
            }
            ptdf.push_str(&format!("Resource /IRS-{machine} application\n"));
            ptdf.push_str(&format!("Execution irs-{machine} IRS\n"));
            for n in 0..2 {
                for p in 0..2 {
                    ptdf.push_str(&format!(
                        "PerfResult irs-{machine} \"/IRS-{machine},/{grid}/{machine}/batch/node{n}/p{p}(primary)\" IRS \"CPU time\" {}.0 seconds\n",
                        n * 2 + p
                    ));
                }
            }
            ptdf.push_str(&format!(
                "PerfResult irs-{machine} \"/IRS-{machine},/{grid}/{machine}(primary)\" IRS \"wall time\" 99.0 seconds\n"
            ));
        }
        store.load_ptdf_str(&ptdf).unwrap();
        store
    }

    #[test]
    fn family_by_name_with_descendants() {
        let store = setup();
        let q = QueryEngine::new(&store);
        let fam = q.family(&ResourceFilter::by_name("Frost")).unwrap();
        // Frost + batch + 2 nodes + 4 processors.
        assert_eq!(fam.len(), 8);
        let fam = q
            .family(&ResourceFilter::by_name("Frost").relatives(Relatives::Neither))
            .unwrap();
        assert_eq!(fam.len(), 1);
        let fam = q
            .family(&ResourceFilter::by_name("Frost").relatives(Relatives::Both))
            .unwrap();
        assert_eq!(fam.len(), 9, "plus the grid ancestor");
        // Shorthand across machines.
        let fam = q
            .family(&ResourceFilter::by_name("batch").relatives(Relatives::Neither))
            .unwrap();
        assert_eq!(fam.len(), 2);
        // Unknown name: empty family.
        let fam = q
            .family(&ResourceFilter::by_name("/nope").relatives(Relatives::Neither))
            .unwrap();
        assert!(fam.is_empty());
    }

    #[test]
    fn parent_walk_strategy_matches_closure() {
        let store = setup();
        let closure = QueryEngine::with_strategy(&store, ExpandStrategy::ClosureTable);
        let walk = QueryEngine::with_strategy(&store, ExpandStrategy::ParentWalk);
        for (name, rel) in [
            ("Frost", Relatives::Descendants),
            ("Frost", Relatives::Both),
            ("batch", Relatives::Ancestors),
            ("node1", Relatives::Both),
        ] {
            let f1 = closure
                .family(&ResourceFilter::by_name(name).relatives(rel))
                .unwrap();
            let f2 = walk
                .family(&ResourceFilter::by_name(name).relatives(rel))
                .unwrap();
            assert_eq!(f1, f2, "strategies disagree for {name} {rel:?}");
        }
    }

    #[test]
    fn family_by_type_and_attrs() {
        let store = setup();
        let q = QueryEngine::new(&store);
        let fam = q
            .family(&ResourceFilter::by_type(
                TypePath::new("grid/machine").unwrap(),
            ))
            .unwrap();
        assert_eq!(fam.len(), 2);
        let fam = q
            .family(&ResourceFilter::by_attrs(vec![AttrPredicate {
                attr: "memoryGB".into(),
                cmp: perftrack_model::AttrCmp::Ge,
                value: "16".into(),
            }]))
            .unwrap();
        assert_eq!(fam.len(), 2, "node1 on each machine");
    }

    #[test]
    fn pr_filter_matching_and_counts() {
        let store = setup();
        let q = QueryEngine::new(&store);
        let filters = vec![
            ResourceFilter::by_name("/IRS-Frost").relatives(Relatives::Neither),
            ResourceFilter::by_name("Frost"),
        ];
        let rows = q.run(&filters).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.execution == "irs-Frost"));
        // Counts.
        let families: Vec<_> = filters.iter().map(|f| q.family(f).unwrap()).collect();
        let counts = q.match_counts(&families).unwrap();
        assert_eq!(counts.per_family[0], 5);
        assert_eq!(counts.per_family[1], 5);
        assert_eq!(counts.whole, 5);
        // Empty filter matches all 10 results.
        assert_eq!(q.run(&[]).unwrap().len(), 10);
    }

    #[test]
    fn run_profiled_reports_pipeline_stages() {
        let store = setup();
        let q = QueryEngine::new(&store);
        let filters = vec![
            ResourceFilter::by_name("/IRS-Frost").relatives(Relatives::Neither),
            ResourceFilter::by_name("Frost"),
        ];
        let (rows, profile) = q.run_profiled(&filters).unwrap();
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = profile
            .operators
            .iter()
            .map(|o| o.operator.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["family[0]", "family[1]", "context-map", "match", "fetch"]
        );
        assert_eq!(profile.operators[0].rows_out, 1, "exact-name family");
        assert_eq!(profile.operators[3].rows_out, 5, "match narrows to 5 ids");
        assert_eq!(profile.operators[4].rows_out, 5, "all ids fetched");
        assert!(profile.total_nanos > 0);
        // The profile serializes to the documented JSON schema.
        let json = profile.to_json().emit();
        let parsed = perftrack_store::metrics::Json::parse(&json).unwrap();
        assert_eq!(parsed, profile.to_json());
    }

    #[test]
    fn pr_filter_probes_each_index_once_per_batch() {
        let store = setup();
        let q = QueryEngine::new(&store);
        let before = store.db().metrics().btree;
        let rows = q
            .run(&[ResourceFilter::by_name("Frost").relatives(Relatives::Both)])
            .unwrap();
        assert_eq!(rows.len(), 5);
        let after = store.db().metrics().btree;
        // Family expansion walks rha_resource and rhd_resource once each,
        // and fetch resolves every matched result id in one walk of
        // performance_result_id: three batched probes total, regardless of
        // how many seeds or ids are in flight.
        assert_eq!(
            after.batch_probes - before.batch_probes,
            3,
            "one batch per index touched"
        );
        // The only point probe is the shorthand seed resolution against
        // the base-name index.
        assert_eq!(
            after.point_probes - before.point_probes,
            1,
            "per-seed point probes are gone"
        );
    }

    #[test]
    fn machine_level_only_by_type() {
        let store = setup();
        let q = QueryEngine::new(&store);
        let rows = q
            .run(&[ResourceFilter::by_type(
                TypePath::new("grid/machine").unwrap(),
            )])
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.metric == "wall time"));
    }

    #[test]
    fn result_rows_are_denormalized() {
        let store = setup();
        let q = QueryEngine::new(&store);
        let rows = q
            .run(&[ResourceFilter::by_name("Frost/batch/node0")])
            .unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.tool, "IRS");
            assert_eq!(r.units, "seconds");
            assert_eq!(r.metric, "CPU time");
            assert!(!r.context.is_empty());
        }
    }

    #[test]
    fn free_resources_exclude_constant_types() {
        let store = setup();
        let q = QueryEngine::new(&store);
        // Query pinned to Frost: application and processor vary across the
        // 4 processor-level rows; machine does not appear because all rows
        // share... actually all contexts have distinct processors.
        let filters = vec![ResourceFilter::by_name("Frost/batch")];
        let families: Vec<_> = filters.iter().map(|f| q.family(f).unwrap()).collect();
        let rows = q.run(&filters).unwrap();
        assert_eq!(rows.len(), 4);
        let free = q.free_resource_types(&rows, &families).unwrap();
        // The only free varying type is `application`? Application differs
        // per machine but these rows are all Frost → constant → hidden.
        // Processor resources are *inside* the pinned family → excluded.
        assert!(
            free.iter().all(|c| c.type_path != "application"),
            "constant application type must be hidden: {free:?}"
        );
    }

    #[test]
    fn free_resources_and_column_values_across_machines() {
        let store = setup();
        let q = QueryEngine::new(&store);
        // Machine-level rows across both machines: machine type varies.
        let filters = vec![ResourceFilter::by_type(
            TypePath::new("grid/machine").unwrap(),
        )];
        let families: Vec<_> = filters.iter().map(|f| q.family(f).unwrap()).collect();
        let rows = q.run(&filters).unwrap();
        let free = q.free_resource_types(&rows, &families).unwrap();
        assert!(
            free.iter().any(|c| c.type_path == "application"),
            "application varies across machines: {free:?}"
        );
        // Column values for the application type.
        let vals = q.column_values(&rows, "application").unwrap();
        assert_eq!(vals.len(), 2);
        assert!(vals.iter().all(|v| v.is_some()));
        // Attribute column on nodes for processor rows.
        let rows = q.run(&[ResourceFilter::by_name("node1")]).unwrap();
        assert_eq!(rows.len(), 4, "two processors per node1 on two machines");
        let vals = q
            .attr_column_values(&rows, "grid/machine/partition/node", "memoryGB")
            .unwrap();
        // node resources aren't in the context (only processors are), so
        // attribute values come back None — the GUI would add the node
        // *resource* type first. Verify processor column instead.
        assert!(vals.iter().all(|v| v.is_none()));
        let vals = q
            .column_values(&rows, "grid/machine/partition/node/processor")
            .unwrap();
        assert!(vals.iter().all(|v| v.is_some()));
    }
}
