//! Simple reports over the data store (§3.3: "The user may request one of
//! several simple reports" — information about resources and their
//! attributes, details of individual executions, and performance
//! results).
//!
//! Reports are structured values with plain-text renderers, so the CLI,
//! tests, and downstream tools all consume the same data.

use crate::datastore::PTDataStore;
use crate::error::{PtError, Result};
use crate::query::QueryEngine;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Store-wide inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSummary {
    pub applications: Vec<String>,
    pub executions: usize,
    pub resources: usize,
    pub resources_by_root_type: BTreeMap<String, usize>,
    pub results: usize,
    pub results_by_tool: BTreeMap<String, usize>,
    pub metrics: usize,
    pub types: usize,
    pub size_bytes: u64,
}

/// Detail of one execution (§3.3's "details of individual executions").
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionDetail {
    pub name: String,
    pub application: String,
    pub results: usize,
    pub metrics: BTreeMap<String, MetricSummary>,
    pub tools: Vec<String>,
    /// Attributes of the execution's run resource, if one exists.
    pub run_attributes: Vec<(String, String)>,
}

/// Per-metric value summary within one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
}

/// One resource's full description (the attribute viewer's data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceDetail {
    pub name: String,
    pub type_path: String,
    pub attributes: Vec<(String, String)>,
    pub children: usize,
    pub results_in_context: usize,
}

/// Report builder over a store.
pub struct Reports<'s> {
    store: &'s PTDataStore,
}

impl<'s> Reports<'s> {
    /// Bind to a store.
    pub fn new(store: &'s PTDataStore) -> Self {
        Reports { store }
    }

    /// The store-wide summary.
    pub fn summary(&self) -> Result<StoreSummary> {
        let engine = QueryEngine::new(self.store);
        let rows = engine.run(&[])?;
        let mut results_by_tool: BTreeMap<String, usize> = BTreeMap::new();
        for r in &rows {
            *results_by_tool.entry(r.tool.clone()).or_insert(0) += 1;
        }
        let types = engine.type_path_by_id()?;
        let mut resources_by_root_type: BTreeMap<String, usize> = BTreeMap::new();
        self.store
            .db()
            .for_each_row(self.store.schema().resource_item, |_, row| {
                if let Ok(tid) = row[crate::schema::col::resource_item::FOCUS_FRAMEWORK_ID].as_int()
                {
                    if let Some(tp) = types.get(&tid) {
                        let root = tp.split('/').next().unwrap_or(tp).to_string();
                        *resources_by_root_type.entry(root).or_insert(0) += 1;
                    }
                }
                true
            })?;
        let mut applications: Vec<String> = Vec::new();
        self.store
            .db()
            .for_each_row(self.store.schema().application, |_, row| {
                if let Ok(n) = row[crate::schema::col::application::NAME].as_text() {
                    applications.push(n.to_string());
                }
                true
            })?;
        applications.sort();
        Ok(StoreSummary {
            applications,
            executions: self.store.executions().len(),
            resources: self.store.resource_count()?,
            resources_by_root_type,
            results: rows.len(),
            results_by_tool,
            metrics: self.store.metrics().len(),
            types: self.store.registry().len(),
            size_bytes: self.store.size_bytes()?,
        })
    }

    /// Detail for one execution.
    pub fn execution(&self, name: &str) -> Result<ExecutionDetail> {
        self.store
            .execution_id(name)
            .ok_or_else(|| PtError::NotFound(format!("execution {name}")))?;
        let engine = QueryEngine::new(self.store);
        let rows: Vec<_> = engine
            .run(&[])?
            .into_iter()
            .filter(|r| r.execution == name)
            .collect();
        let mut metrics: BTreeMap<String, MetricSummary> = BTreeMap::new();
        let mut tools: Vec<String> = Vec::new();
        for r in &rows {
            let m = metrics.entry(r.metric.clone()).or_insert(MetricSummary {
                count: 0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                mean: 0.0,
            });
            m.count += 1;
            m.min = m.min.min(r.value);
            m.max = m.max.max(r.value);
            m.mean += r.value;
            if !tools.contains(&r.tool) {
                tools.push(r.tool.clone());
            }
        }
        for m in metrics.values_mut() {
            m.mean /= m.count.max(1) as f64;
        }
        tools.sort();
        // Application name: via any result row or the execution table.
        let application = {
            let db = self.store.db();
            let schema = self.store.schema();
            let mut app = String::new();
            db.for_each_row(schema.execution, |_, row| {
                if row[crate::schema::col::execution::NAME].as_text().ok() == Some(name) {
                    let app_id = row[crate::schema::col::execution::APPLICATION_ID]
                        .as_int()
                        .unwrap_or(0);
                    db.for_each_row(schema.application, |_, arow| {
                        if arow[crate::schema::col::application::ID].as_int().ok() == Some(app_id) {
                            app = arow[crate::schema::col::application::NAME]
                                .as_text()
                                .unwrap_or("")
                                .to_string();
                            return false;
                        }
                        true
                    })
                    .ok();
                    return false;
                }
                true
            })?;
            app
        };
        // Run-resource attributes (both `-run` and bare-name conventions).
        let mut run_attributes = Vec::new();
        for candidate in [format!("/{name}-run"), format!("/{name}")] {
            if let Some(rec) = self.store.resource_by_name(&candidate)? {
                run_attributes = self
                    .store
                    .attributes_of(rec.id)?
                    .into_iter()
                    .map(|(k, v, _)| (k, v))
                    .collect();
                break;
            }
        }
        Ok(ExecutionDetail {
            name: name.to_string(),
            application,
            results: rows.len(),
            metrics,
            tools,
            run_attributes,
        })
    }

    /// Detail for one resource by full name.
    pub fn resource(&self, name: &str) -> Result<ResourceDetail> {
        let rec = self
            .store
            .resource_by_name(name)?
            .ok_or_else(|| PtError::NotFound(format!("resource {name}")))?;
        let engine = QueryEngine::new(self.store);
        let types = engine.type_path_by_id()?;
        // Children: resources whose parent_id is this id.
        let mut children = 0usize;
        self.store
            .db()
            .for_each_row(self.store.schema().resource_item, |_, row| {
                if row[crate::schema::col::resource_item::PARENT_ID]
                    .as_int()
                    .ok()
                    == Some(rec.id)
                {
                    children += 1;
                }
                true
            })?;
        // Results whose context contains this resource.
        let contexts = engine.result_context_map()?;
        let results_in_context = contexts
            .values()
            .filter(|ctx| ctx.contains(&rec.id))
            .count();
        Ok(ResourceDetail {
            name: rec.name.clone(),
            type_path: types.get(&rec.type_id).cloned().unwrap_or_default(),
            attributes: self
                .store
                .attributes_of(rec.id)?
                .into_iter()
                .map(|(k, v, _)| (k, v))
                .collect(),
            children,
            results_in_context,
        })
    }

    /// Render the summary as text.
    pub fn render_summary(s: &StoreSummary) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "applications : {}", s.applications.join(", "));
        let _ = writeln!(out, "executions   : {}", s.executions);
        let _ = writeln!(out, "resources    : {}", s.resources);
        for (root, n) in &s.resources_by_root_type {
            let _ = writeln!(out, "  {root:<12}: {n}");
        }
        let _ = writeln!(out, "results      : {}", s.results);
        for (tool, n) in &s.results_by_tool {
            let _ = writeln!(out, "  {tool:<12}: {n}");
        }
        let _ = writeln!(out, "metrics      : {}", s.metrics);
        let _ = writeln!(out, "types        : {}", s.types);
        let _ = writeln!(out, "size (bytes) : {}", s.size_bytes);
        out
    }

    /// Render an execution detail as text.
    pub fn render_execution(d: &ExecutionDetail) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "execution {} (application {})", d.name, d.application);
        let _ = writeln!(
            out,
            "  results: {}  tools: {}",
            d.results,
            d.tools.join(", ")
        );
        if !d.run_attributes.is_empty() {
            let _ = writeln!(out, "  run attributes:");
            for (k, v) in &d.run_attributes {
                let _ = writeln!(out, "    {k} = {v}");
            }
        }
        let _ = writeln!(out, "  metrics:");
        for (name, m) in &d.metrics {
            let _ = writeln!(
                out,
                "    {name:<32} n={:<5} min={:<12.4} mean={:<12.4} max={:.4}",
                m.count, m.min, m.mean, m.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PTDataStore {
        let s = PTDataStore::in_memory().unwrap();
        s.load_ptdf_str(
            r#"
Application IRS
Execution e1 IRS
Execution e2 IRS
Resource /IRS application
Resource /e1-run execution
ResourceAttribute /e1-run processes 8 string
Resource /G grid
Resource /G/M grid/machine
PerfResult e1 "/IRS,/e1-run(primary)" IRS "CPU time" 4.0 seconds
PerfResult e1 "/IRS,/e1-run(primary)" IRS "CPU time" 6.0 seconds
PerfResult e1 "/IRS,/G/M(primary)" mpiP "MPI time" 1.0 seconds
PerfResult e2 /IRS(primary) IRS "CPU time" 9.0 seconds
"#,
        )
        .unwrap();
        s
    }

    #[test]
    fn summary_counts_and_breakdowns() {
        let s = store();
        let sum = Reports::new(&s).summary().unwrap();
        assert_eq!(sum.applications, vec!["IRS"]);
        assert_eq!(sum.executions, 2);
        assert_eq!(sum.results, 4);
        assert_eq!(sum.results_by_tool["IRS"], 3);
        assert_eq!(sum.results_by_tool["mpiP"], 1);
        assert_eq!(sum.resources_by_root_type["grid"], 2);
        assert_eq!(sum.resources_by_root_type["application"], 1);
        assert_eq!(sum.resources_by_root_type["execution"], 1);
        let text = Reports::render_summary(&sum);
        assert!(text.contains("executions   : 2"));
        assert!(text.contains("mpiP"));
    }

    #[test]
    fn execution_detail_with_metric_stats() {
        let s = store();
        let d = Reports::new(&s).execution("e1").unwrap();
        assert_eq!(d.application, "IRS");
        assert_eq!(d.results, 3);
        assert_eq!(d.tools, vec!["IRS", "mpiP"]);
        let cpu = &d.metrics["CPU time"];
        assert_eq!(cpu.count, 2);
        assert_eq!(cpu.min, 4.0);
        assert_eq!(cpu.max, 6.0);
        assert!((cpu.mean - 5.0).abs() < 1e-12);
        assert!(d
            .run_attributes
            .iter()
            .any(|(k, v)| k == "processes" && v == "8"));
        let text = Reports::render_execution(&d);
        assert!(text.contains("execution e1"));
        assert!(text.contains("CPU time"));
        // Unknown execution errors.
        assert!(Reports::new(&s).execution("ghost").is_err());
    }

    #[test]
    fn resource_detail() {
        let s = store();
        let d = Reports::new(&s).resource("/G").unwrap();
        assert_eq!(d.type_path, "grid");
        assert_eq!(d.children, 1);
        assert_eq!(d.results_in_context, 0);
        let d = Reports::new(&s).resource("/G/M").unwrap();
        assert_eq!(d.results_in_context, 1);
        assert!(Reports::new(&s).resource("/nope").is_err());
    }
}
