//! The GUI session model (§3.2, Figures 3–5), toolkit-free.
//!
//! Every behaviour the paper describes for the Qt GUI lives here as plain
//! data and methods: the *selection dialog* (resource-type menu, resource
//! name lists with child expansion, attribute lists, pr-filter
//! construction with the D/A/B/N relatives flag, live match counts) and
//! the *main window* (tabular results, two-step "Add Columns" over free
//! resources, sorting, row filtering, CSV export, bar-chart extraction).

use crate::chart::{csv_escape, BarChart, Series};
use crate::datastore::PTDataStore;
use crate::error::{PtError, Result};
use crate::query::{FreeResourceColumn, MatchCounts, QueryEngine, ResultRow};
use perftrack_model::{AttrPredicate, Relatives, ResourceFilter, TypePath};
use perftrack_store::metrics::QueryProfile;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// One entry in the dialog's "Selected Parameters" list.
#[derive(Debug, Clone)]
pub struct SelectedParameter {
    /// Display label (resource name pattern, type path, or predicate).
    pub label: String,
    pub filter: ResourceFilter,
}

/// The selection dialog (Figure 3).
///
/// # Threading
///
/// The builder methods (`add_name`, `add_type`, …) take `&mut self`
/// deliberately: a dialog is one user's in-progress parameter list, not
/// shared state, so accumulation is exclusive by construction. The
/// query it ultimately runs — [`SelectionDialog::retrieve`] — takes
/// `&self` and only reads the store, so finished dialogs (and the
/// [`ResultTable`]s they produce) can be shipped to and used from other
/// threads: both types are `Send + Sync` (`tests/send_sync.rs`).
pub struct SelectionDialog<'s> {
    store: &'s PTDataStore,
    selected: Vec<SelectedParameter>,
}

impl<'s> SelectionDialog<'s> {
    /// Open a dialog over a store (the GUI's "establish a database
    /// connection and present a selection dialog").
    pub fn new(store: &'s PTDataStore) -> Self {
        SelectionDialog {
            store,
            selected: Vec::new(),
        }
    }

    /// The resource-type popup menu: every registered type path.
    pub fn resource_type_menu(&self) -> Vec<String> {
        self.store
            .registry()
            .all()
            .map(|tp| tp.as_str().to_string())
            .collect()
    }

    /// Top-level name list for a type: distinct base names of resources of
    /// that type, with occurrence counts (an entry can represent several
    /// resources, like `batch` on multiple machines).
    pub fn names_for_type(&self, type_path: &str) -> Result<Vec<(String, usize)>> {
        let type_id = self
            .store
            .type_id(type_path)
            .ok_or_else(|| PtError::NotFound(format!("type {type_path}")))?;
        let db = self.store.db();
        let schema = self.store.schema();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        db.for_each_row(schema.resource_item, |_, row| {
            let rec = crate::datastore::decode_resource(row);
            if rec.type_id == type_id {
                *counts.entry(rec.base_name).or_insert(0) += 1;
            }
            true
        })?;
        Ok(counts.into_iter().collect())
    }

    /// Attribute names present on resources of a type (the dialog's
    /// attribute box).
    pub fn attributes_for_type(&self, type_path: &str) -> Result<Vec<String>> {
        let type_id = self
            .store
            .type_id(type_path)
            .ok_or_else(|| PtError::NotFound(format!("type {type_path}")))?;
        let db = self.store.db();
        let schema = self.store.schema();
        let mut ids = Vec::new();
        db.for_each_row(schema.resource_item, |_, row| {
            let rec = crate::datastore::decode_resource(row);
            if rec.type_id == type_id {
                ids.push(rec.id);
            }
            true
        })?;
        let mut attrs: BTreeSet<String> = BTreeSet::new();
        for id in ids {
            for (name, _, _) in self.store.attributes_of(id)? {
                attrs.insert(name);
            }
        }
        Ok(attrs.into_iter().collect())
    }

    /// Expand a name entry to its children (clicking a resource name in
    /// the list). `suffix` is the paper's path shorthand — expanding
    /// `Frost` yields `Frost/batch`, whose semantics are "batch partitions
    /// under a machine named Frost".
    pub fn children_of_name(&self, suffix: &str) -> Result<Vec<(String, usize)>> {
        let engine = QueryEngine::new(self.store);
        let fam = engine.family(&ResourceFilter::by_name(suffix).relatives(Relatives::Neither))?;
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let db = self.store.db();
        let schema = self.store.schema();
        db.for_each_row(schema.resource_item, |_, row| {
            let rec = crate::datastore::decode_resource(row);
            if let Some(pid) = rec.parent_id {
                if fam.contains(&pid) {
                    *counts
                        .entry(format!("{suffix}/{}", rec.base_name))
                        .or_insert(0) += 1;
                }
            }
            true
        })?;
        Ok(counts.into_iter().collect())
    }

    /// The attribute viewer: `(resource full name, attribute, value)` for
    /// every resource an entry refers to.
    pub fn attribute_viewer(&self, suffix: &str) -> Result<Vec<(String, String, String)>> {
        let engine = QueryEngine::new(self.store);
        let fam = engine.family(&ResourceFilter::by_name(suffix).relatives(Relatives::Neither))?;
        let mut out = Vec::new();
        for id in fam {
            if let Some(rec) = self.store.resource_by_id(id)? {
                for (attr, value, _) in self.store.attributes_of(id)? {
                    out.push((rec.name.clone(), attr, value));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Add a resource-name selection to the pr-filter (default relatives:
    /// descendants, the GUI's `D`).
    pub fn add_name(&mut self, suffix: &str, relatives: Relatives) {
        self.selected.push(SelectedParameter {
            label: format!("{suffix} [{}]", relatives.code()),
            filter: ResourceFilter::by_name(suffix).relatives(relatives),
        });
    }

    /// Add a bare resource type (no name): machine-level-only queries.
    pub fn add_type(&mut self, type_path: &TypePath) {
        self.selected.push(SelectedParameter {
            label: format!("type {type_path} [N]"),
            filter: ResourceFilter::by_type(type_path.clone()),
        });
    }

    /// Add an attribute predicate selection.
    pub fn add_attr(&mut self, pred: AttrPredicate) {
        self.selected.push(SelectedParameter {
            label: format!("{} {:?} {}", pred.attr, pred.cmp, pred.value),
            filter: ResourceFilter::by_attrs(vec![pred]),
        });
    }

    /// Change the relatives flag of an already-selected parameter (the
    /// editable "Relatives" column).
    pub fn set_relatives(&mut self, index: usize, relatives: Relatives) -> Result<()> {
        let p = self
            .selected
            .get_mut(index)
            .ok_or_else(|| PtError::Invalid(format!("no selected parameter {index}")))?;
        p.filter.relatives = relatives;
        if let Some(open) = p.label.rfind('[') {
            p.label.truncate(open);
            p.label.push_str(&format!("[{}]", relatives.code()));
        }
        Ok(())
    }

    /// Remove a selected parameter.
    pub fn remove(&mut self, index: usize) {
        if index < self.selected.len() {
            self.selected.remove(index);
        }
    }

    /// The current "Selected Parameters" list.
    pub fn selected(&self) -> &[SelectedParameter] {
        &self.selected
    }

    /// Live match counts for the pr-filter under construction ("lets users
    /// tailor queries to return a reasonable number of results").
    pub fn counts(&self) -> Result<MatchCounts> {
        let engine = QueryEngine::new(self.store);
        let families = self
            .selected
            .iter()
            .map(|p| engine.family(&p.filter))
            .collect::<Result<Vec<_>>>()?;
        engine.match_counts(&families)
    }

    /// Execute the query and open the main window (Figure 4).
    pub fn retrieve(&self) -> Result<ResultTable<'s>> {
        Ok(self.retrieve_profiled()?.0)
    }

    /// EXPLAIN the pr-filter the dialog has built so far, without
    /// running it (the CLI's `--explain` flag surfaces this).
    pub fn explain(&self) -> perftrack_store::planner::ExplainPlan {
        let engine = QueryEngine::new(self.store);
        let filters: Vec<ResourceFilter> = self.selected.iter().map(|p| p.filter.clone()).collect();
        engine.explain(&filters)
    }

    /// Like [`SelectionDialog::retrieve`], but also returns the
    /// per-operator [`QueryProfile`] of the executed pr-filter pipeline
    /// (the CLI's `--profile` flag surfaces this).
    pub fn retrieve_profiled(&self) -> Result<(ResultTable<'s>, QueryProfile)> {
        let engine = QueryEngine::new(self.store);
        let filters: Vec<ResourceFilter> = self.selected.iter().map(|p| p.filter.clone()).collect();
        let (rows, profile) = engine.run_profiled(&filters)?;
        let families = self
            .selected
            .iter()
            .map(|p| engine.family(&p.filter))
            .collect::<Result<Vec<_>>>()?;
        Ok((
            ResultTable {
                store: self.store,
                fixed_families: families,
                base_rows: rows,
                extra_columns: Vec::new(),
                hidden: HashSet::new(),
            },
            profile,
        ))
    }
}

/// An added display column.
#[derive(Debug, Clone)]
enum ExtraColumn {
    /// Resource base name of a type.
    ResourceType { type_path: String },
    /// Attribute of the context resource of a type.
    Attribute { type_path: String, attr: String },
}

/// The main window's result table (Figure 4).
pub struct ResultTable<'s> {
    store: &'s PTDataStore,
    fixed_families: Vec<HashSet<i64>>,
    base_rows: Vec<ResultRow>,
    extra_columns: Vec<(String, ExtraColumn)>,
    hidden: HashSet<i64>,
}

/// Fixed leading columns of the table.
pub const BASE_COLUMNS: [&str; 5] = ["execution", "metric", "value", "units", "tool"];

impl<'s> ResultTable<'s> {
    /// Number of (visible) result rows.
    pub fn len(&self) -> usize {
        self.base_rows
            .iter()
            .filter(|r| !self.hidden.contains(&r.result_id))
            .count()
    }

    /// True when no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying matched rows (including hidden).
    pub fn rows(&self) -> &[ResultRow] {
        &self.base_rows
    }

    /// Column headers: the base columns plus added ones.
    pub fn columns(&self) -> Vec<String> {
        BASE_COLUMNS
            .iter()
            .map(|s| s.to_string())
            .chain(self.extra_columns.iter().map(|(n, _)| n.clone()))
            .collect()
    }

    /// The "Add Columns" dialog content: free resource types whose values
    /// vary across the displayed results (§3.2's two-step design).
    pub fn addable_columns(&self) -> Result<Vec<FreeResourceColumn>> {
        let engine = QueryEngine::new(self.store);
        engine.free_resource_types(&self.base_rows, &self.fixed_families)
    }

    /// Add a free-resource column by type.
    pub fn add_resource_column(&mut self, type_path: &str) {
        self.extra_columns.push((
            type_path
                .rsplit('/')
                .next()
                .unwrap_or(type_path)
                .to_string(),
            ExtraColumn::ResourceType {
                type_path: type_path.to_string(),
            },
        ));
    }

    /// Add an attribute column for the context resources of a type.
    pub fn add_attribute_column(&mut self, type_path: &str, attr: &str) {
        self.extra_columns.push((
            attr.to_string(),
            ExtraColumn::Attribute {
                type_path: type_path.to_string(),
                attr: attr.to_string(),
            },
        ));
    }

    /// Render the visible table as strings (row-major).
    pub fn render(&self) -> Result<Vec<Vec<String>>> {
        let engine = QueryEngine::new(self.store);
        // Pre-compute extra column values over all rows, then filter.
        let mut extra_values: Vec<Vec<Option<String>>> = Vec::new();
        for (_, c) in &self.extra_columns {
            let vals = match c {
                ExtraColumn::ResourceType { type_path } => {
                    engine.column_values(&self.base_rows, type_path)?
                }
                ExtraColumn::Attribute { type_path, attr } => {
                    engine.attr_column_values(&self.base_rows, type_path, attr)?
                }
            };
            extra_values.push(vals);
        }
        let mut out = Vec::new();
        for (i, r) in self.base_rows.iter().enumerate() {
            if self.hidden.contains(&r.result_id) {
                continue;
            }
            let mut row = vec![
                r.execution.clone(),
                r.metric.clone(),
                format!("{}", r.value),
                r.units.clone(),
                r.tool.clone(),
            ];
            for vals in &extra_values {
                row.push(vals[i].clone().unwrap_or_default());
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Sort rows by a column index (over the rendered representation;
    /// numeric when every value parses as a number).
    pub fn sort_by(&mut self, column: usize, ascending: bool) -> Result<()> {
        let rendered = self.render()?;
        if rendered.is_empty() {
            return Ok(());
        }
        if column >= rendered[0].len() {
            return Err(PtError::Invalid(format!("no column {column}")));
        }
        // Build a sort key per visible row, then reorder base_rows to
        // match (hidden rows keep relative order at the end).
        let visible: Vec<&ResultRow> = self
            .base_rows
            .iter()
            .filter(|r| !self.hidden.contains(&r.result_id))
            .collect();
        let numeric = rendered.iter().all(|r| r[column].parse::<f64>().is_ok());
        let mut order: Vec<usize> = (0..visible.len()).collect();
        order.sort_by(|&a, &b| {
            let (va, vb) = (&rendered[a][column], &rendered[b][column]);
            let ord = if numeric {
                va.parse::<f64>()
                    .unwrap()
                    .partial_cmp(&vb.parse::<f64>().unwrap())
                    .unwrap_or(std::cmp::Ordering::Equal)
            } else {
                va.cmp(vb)
            };
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        let sorted_visible: Vec<ResultRow> = order.iter().map(|&i| visible[i].clone()).collect();
        let hidden_rows: Vec<ResultRow> = self
            .base_rows
            .iter()
            .filter(|r| self.hidden.contains(&r.result_id))
            .cloned()
            .collect();
        self.base_rows = sorted_visible;
        self.base_rows.extend(hidden_rows);
        Ok(())
    }

    /// Hide rows whose metric is not `metric` (one of the GUI's row
    /// filters).
    pub fn filter_metric(&mut self, metric: &str) {
        for r in &self.base_rows {
            if r.metric != metric {
                self.hidden.insert(r.result_id);
            }
        }
    }

    /// Hide rows whose execution is not `execution`.
    pub fn filter_execution(&mut self, execution: &str) {
        for r in &self.base_rows {
            if r.execution != execution {
                self.hidden.insert(r.result_id);
            }
        }
    }

    /// Clear all row filters.
    pub fn clear_filters(&mut self) {
        self.hidden.clear();
    }

    /// Export the visible table as CSV ("store data in a format suitable
    /// for spreadsheet programs to import").
    pub fn to_csv(&self) -> Result<String> {
        let mut out = String::new();
        out.push_str(
            &self
                .columns()
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in self.render()? {
            out.push_str(
                &row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        Ok(out)
    }

    /// Plot visible rows as a bar chart: categories from one rendered
    /// column, one series per distinct value of another column, values
    /// from the `value` column (mean when several rows share a cell).
    pub fn chart(&self, title: &str, category_col: usize, series_col: usize) -> Result<BarChart> {
        let rendered = self.render()?;
        let mut categories: Vec<String> = Vec::new();
        let mut series_names: Vec<String> = Vec::new();
        for row in &rendered {
            if !categories.contains(&row[category_col]) {
                categories.push(row[category_col].clone());
            }
            if !series_names.contains(&row[series_col]) {
                series_names.push(row[series_col].clone());
            }
        }
        let units = self
            .base_rows
            .iter()
            .find(|r| !self.hidden.contains(&r.result_id))
            .map(|r| r.units.clone())
            .unwrap_or_default();
        let mut series = Vec::new();
        for name in &series_names {
            let mut values = Vec::new();
            for cat in &categories {
                let cells: Vec<f64> = rendered
                    .iter()
                    .filter(|r| &r[category_col] == cat && &r[series_col] == name)
                    .filter_map(|r| r[2].parse::<f64>().ok())
                    .collect();
                let mean = if cells.is_empty() {
                    0.0
                } else {
                    cells.iter().sum::<f64>() / cells.len() as f64
                };
                values.push(mean);
            }
            series.push(Series {
                name: name.clone(),
                values,
            });
        }
        Ok(BarChart::new(title, categories, series, &units))
    }
}

/// A table detached from any store, reconstructed from a CSV export —
/// the GUI's "store the data to files, read it back in" path (§3.2).
/// Detached tables support the display-side operations (sort, filter,
/// chart) without a database connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetachedTable {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl DetachedTable {
    /// Parse a CSV document produced by [`ResultTable::to_csv`] (or any
    /// CSV with the same quoting rules).
    pub fn from_csv(text: &str) -> Result<DetachedTable> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| PtError::Invalid("empty CSV".into()))?;
        let columns = parse_csv_line(header)?;
        if columns.is_empty() {
            return Err(PtError::Invalid("CSV has no columns".into()));
        }
        let mut rows = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let row = parse_csv_line(line)?;
            if row.len() != columns.len() {
                return Err(PtError::Invalid(format!(
                    "CSV row {} has {} fields, expected {}",
                    i + 2,
                    row.len(),
                    columns.len()
                )));
            }
            rows.push(row);
        }
        Ok(DetachedTable { columns, rows })
    }

    /// Sort rows by a column (numeric when every value parses).
    pub fn sort_by(&mut self, column: usize, ascending: bool) -> Result<()> {
        if column >= self.columns.len() {
            return Err(PtError::Invalid(format!("no column {column}")));
        }
        let numeric = self.rows.iter().all(|r| r[column].parse::<f64>().is_ok());
        self.rows.sort_by(|a, b| {
            let ord = if numeric {
                a[column]
                    .parse::<f64>()
                    .unwrap()
                    .partial_cmp(&b[column].parse::<f64>().unwrap())
                    .unwrap_or(std::cmp::Ordering::Equal)
            } else {
                a[column].cmp(&b[column])
            };
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        Ok(())
    }

    /// Keep only rows whose `column` equals `value`.
    pub fn filter_eq(&mut self, column: usize, value: &str) -> Result<()> {
        if column >= self.columns.len() {
            return Err(PtError::Invalid(format!("no column {column}")));
        }
        self.rows.retain(|r| r[column] == value);
        Ok(())
    }

    /// Round-trip back to CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Chart a detached table, like [`ResultTable::chart`]: `value_col`
    /// supplies the numbers.
    pub fn chart(
        &self,
        title: &str,
        category_col: usize,
        series_col: usize,
        value_col: usize,
    ) -> Result<BarChart> {
        for c in [category_col, series_col, value_col] {
            if c >= self.columns.len() {
                return Err(PtError::Invalid(format!("no column {c}")));
            }
        }
        let mut categories: Vec<String> = Vec::new();
        let mut series_names: Vec<String> = Vec::new();
        for row in &self.rows {
            if !categories.contains(&row[category_col]) {
                categories.push(row[category_col].clone());
            }
            if !series_names.contains(&row[series_col]) {
                series_names.push(row[series_col].clone());
            }
        }
        let mut series = Vec::new();
        for name in &series_names {
            let mut values = Vec::new();
            for cat in &categories {
                let cells: Vec<f64> = self
                    .rows
                    .iter()
                    .filter(|r| &r[category_col] == cat && &r[series_col] == name)
                    .filter_map(|r| r[value_col].parse().ok())
                    .collect();
                values.push(if cells.is_empty() {
                    0.0
                } else {
                    cells.iter().sum::<f64>() / cells.len() as f64
                });
            }
            series.push(Series {
                name: name.clone(),
                values,
            });
        }
        Ok(BarChart::new(title, categories, series, ""))
    }
}

/// Parse one CSV line with the quoting rules of [`csv_escape`].
fn parse_csv_line(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            None => {
                fields.push(std::mem::take(&mut cur));
                break;
            }
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cur.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => cur.push(c),
                        None => {
                            return Err(PtError::Invalid("unterminated CSV quote".into()));
                        }
                    }
                }
            }
            Some(',') => {
                chars.next();
                fields.push(std::mem::take(&mut cur));
            }
            Some(_) => {
                cur.push(chars.next().unwrap());
            }
        }
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perftrack_model::AttrCmp;

    fn setup() -> PTDataStore {
        let store = PTDataStore::in_memory().unwrap();
        let mut ptdf = String::from("Application IRS\n");
        for (grid, machine, os) in [("GF", "Frost", "AIX"), ("GM", "MCR", "Linux")] {
            ptdf.push_str(&format!("Resource /{grid} grid\n"));
            ptdf.push_str(&format!("Resource /{grid}/{machine} grid/machine\n"));
            ptdf.push_str(&format!(
                "ResourceAttribute /{grid}/{machine} os {os} string\n"
            ));
            ptdf.push_str(&format!(
                "Resource /{grid}/{machine}/batch grid/machine/partition\n"
            ));
            for n in 0..2 {
                ptdf.push_str(&format!(
                    "Resource /{grid}/{machine}/batch/node{n} grid/machine/partition/node\n"
                ));
            }
            ptdf.push_str(&format!("Resource /irs-{machine} application\n"));
            ptdf.push_str(&format!("Execution exec-{machine} IRS\n"));
            for n in 0..2 {
                ptdf.push_str(&format!(
                    "PerfResult exec-{machine} \"/irs-{machine},/{grid}/{machine}/batch/node{n}(primary)\" IRS \"CPU time\" {}.5 seconds\n",
                    n + 1
                ));
            }
        }
        store.load_ptdf_str(&ptdf).unwrap();
        store
    }

    #[test]
    fn dialog_menus_and_lists() {
        let store = setup();
        let d = SelectionDialog::new(&store);
        let menu = d.resource_type_menu();
        assert!(menu.contains(&"grid/machine".to_string()));
        let names = d.names_for_type("grid/machine").unwrap();
        assert_eq!(
            names,
            vec![("Frost".to_string(), 1), ("MCR".to_string(), 1)]
        );
        // "batch" appears once per machine.
        let names = d.names_for_type("grid/machine/partition").unwrap();
        assert_eq!(names, vec![("batch".to_string(), 2)]);
        let attrs = d.attributes_for_type("grid/machine").unwrap();
        assert_eq!(attrs, vec!["os".to_string()]);
    }

    #[test]
    fn child_expansion_restricts_scope() {
        let store = setup();
        let d = SelectionDialog::new(&store);
        // Children of the generic "batch" entry: nodes on both machines.
        let kids = d.children_of_name("batch").unwrap();
        assert_eq!(
            kids,
            vec![
                ("batch/node0".to_string(), 2),
                ("batch/node1".to_string(), 2)
            ]
        );
        // Children of "Frost/batch" restrict to Frost (Fig. 3 semantics).
        let kids = d.children_of_name("Frost/batch").unwrap();
        assert_eq!(
            kids,
            vec![
                ("Frost/batch/node0".to_string(), 1),
                ("Frost/batch/node1".to_string(), 1)
            ]
        );
    }

    #[test]
    fn attribute_viewer_lists_per_resource() {
        let store = setup();
        let d = SelectionDialog::new(&store);
        let rows = d.attribute_viewer("Frost").unwrap();
        assert_eq!(rows, vec![("/GF/Frost".into(), "os".into(), "AIX".into())]);
        // Multi-resource entry shows all.
        let rows = d.attribute_viewer("batch").unwrap();
        assert!(rows.is_empty(), "batch partitions have no attributes");
    }

    #[test]
    fn build_query_with_live_counts_then_retrieve() {
        let store = setup();
        let mut d = SelectionDialog::new(&store);
        d.add_name("Frost", Relatives::Descendants);
        let counts = d.counts().unwrap();
        assert_eq!(counts.per_family, vec![2]);
        assert_eq!(counts.whole, 2);
        d.add_attr(AttrPredicate {
            attr: "os".into(),
            cmp: AttrCmp::Eq,
            value: "AIX".into(),
        });
        // The os=AIX family is only machine-level; machine isn't in any
        // context, so the whole filter now matches nothing — the feedback
        // loop the GUI counts exist for. Switch the attr family to include
        // descendants instead.
        assert_eq!(d.counts().unwrap().whole, 0);
        d.set_relatives(2 - 1, Relatives::Descendants).unwrap();
        assert_eq!(d.counts().unwrap().whole, 2);
        let table = d.retrieve().unwrap();
        assert_eq!(table.len(), 2);
        // Selected parameters are inspectable and removable.
        assert_eq!(d.selected().len(), 2);
        d.remove(1);
        assert_eq!(d.selected().len(), 1);
    }

    #[test]
    fn table_columns_sort_filter_csv() {
        let store = setup();
        let d = SelectionDialog::new(&store);
        let mut table = d.retrieve().unwrap(); // empty filter: all 4 results
        assert_eq!(table.len(), 4);
        assert_eq!(table.columns(), BASE_COLUMNS.to_vec());
        // Sort by value descending: first row has the largest value.
        table.sort_by(2, false).unwrap();
        let rows = table.render().unwrap();
        assert_eq!(rows[0][2], "2.5");
        // Filter to one execution.
        table.filter_execution("exec-Frost");
        assert_eq!(table.len(), 2);
        table.clear_filters();
        assert_eq!(table.len(), 4);
        // Add a free-resource column.
        let addable = table.addable_columns().unwrap();
        assert!(
            addable
                .iter()
                .any(|c| c.type_path == "grid/machine/partition/node"),
            "node varies: {addable:?}"
        );
        table.add_resource_column("grid/machine/partition/node");
        let rows = table.render().unwrap();
        assert!(rows.iter().any(|r| r[5] == "node0"));
        // Attribute column via the machine's os — machines aren't in the
        // context, so instead add the application column.
        table.add_resource_column("application");
        let rows = table.render().unwrap();
        assert!(rows.iter().any(|r| r[6].starts_with("irs-")));
        // CSV includes headers and all rows.
        let csv = table.to_csv().unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("execution,metric,value,units,tool,node,application"));
    }

    #[test]
    fn retrieve_profiled_matches_retrieve() {
        let store = setup();
        let mut d = SelectionDialog::new(&store);
        d.add_name("Frost", Relatives::Descendants);
        let plain = d.retrieve().unwrap();
        let (profiled, profile) = d.retrieve_profiled().unwrap();
        assert_eq!(profiled.rows(), plain.rows());
        let names: Vec<&str> = profile
            .operators
            .iter()
            .map(|o| o.operator.as_str())
            .collect();
        assert_eq!(names, vec!["family[0]", "context-map", "match", "fetch"]);
        assert!(profile.total_nanos > 0);
    }

    #[test]
    fn csv_roundtrip_through_detached_table() {
        let store = setup();
        let d = SelectionDialog::new(&store);
        let mut table = d.retrieve().unwrap();
        table.add_resource_column("grid/machine/partition/node");
        let csv = table.to_csv().unwrap();
        // "Read it back in": full round-trip.
        let mut detached = DetachedTable::from_csv(&csv).unwrap();
        assert_eq!(detached.columns, table.columns());
        assert_eq!(detached.rows.len(), table.len());
        assert_eq!(detached.to_csv(), csv);
        // Display-side operations work offline.
        detached.sort_by(2, false).unwrap();
        let vals: Vec<f64> = detached
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] >= w[1]));
        detached.filter_eq(0, "exec-Frost").unwrap();
        assert_eq!(detached.rows.len(), 2);
        let chart = detached.chart("offline", 5, 1, 2).unwrap();
        assert!(!chart.categories.is_empty());
    }

    #[test]
    fn detached_table_error_paths() {
        assert!(DetachedTable::from_csv("").is_err());
        assert!(DetachedTable::from_csv("a,b\n1\n").is_err(), "ragged row");
        assert!(DetachedTable::from_csv("a,\"unterminated\n1,2\n").is_err());
        // Quoted fields with commas and quotes round-trip.
        let t = DetachedTable::from_csv("name,note\nx,\"hello, \"\"world\"\"\"\n").unwrap();
        assert_eq!(t.rows[0][1], "hello, \"world\"");
        let again = DetachedTable::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn chart_extraction() {
        let store = setup();
        let d = SelectionDialog::new(&store);
        let mut table = d.retrieve().unwrap();
        table.add_resource_column("grid/machine/partition/node");
        // Category = node (col 5), series = execution (col 0).
        let chart = table.chart("cpu by node", 5, 0).unwrap();
        assert_eq!(chart.categories, vec!["node0", "node1"]);
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.units, "seconds");
        let ascii = chart.render_ascii(70);
        assert!(ascii.contains("node1"));
    }
}
