//! Core-level planning pass over the pr-filter IR.
//!
//! Before running a pr-filter query, [`plan_filters`] costs each
//! [`ResourceFilter`]'s seed access path and closure expansion from the
//! store's ANALYZE statistics ([`perftrack_store::db::Database::analyze`])
//! and decides the order in which families are checked during the match
//! stage — most selective first, so non-matching contexts are rejected
//! after the fewest set probes. The same pass feeds
//! [`crate::query::QueryEngine::explain`] (the `pt-explain/v1` tree) and
//! the estimate annotations on profiled runs.
//!
//! Like the store-level planner, this pass never fails: missing or stale
//! statistics simply leave estimates empty and keep the pre-planner
//! behaviour.

use crate::datastore::PTDataStore;
use crate::schema::Schema;
use perftrack_model::{Relatives, ResourceFilter, Selector};
use perftrack_store::planner::{ExplainNode, ExplainPlan};
use perftrack_store::value::encode_key_vec;
use perftrack_store::Value;

/// The planned evaluation of one resource filter.
#[derive(Debug, Clone)]
pub struct FilterPlan {
    /// Seed access-path description, e.g.
    /// `index-eq(resource_item_base) [statistics]`.
    pub access: String,
    /// Requested relative expansion.
    pub relatives: Relatives,
    /// Estimated seed resources before expansion.
    pub estimated_seed: Option<u64>,
    /// Estimated family size after ancestor/descendant expansion.
    pub estimated_family: Option<u64>,
}

/// The planned evaluation of a whole pr-filter query.
#[derive(Debug, Clone)]
pub struct PrFilterPlan {
    /// One plan per filter, in the caller's filter order.
    pub filters: Vec<FilterPlan>,
    /// Family-check order for the match stage: filter indexes sorted by
    /// ascending estimated family size (unestimated filters last).
    pub match_order: Vec<usize>,
    /// Estimated result contexts (rows of the `focus` table).
    pub estimated_contexts: Option<u64>,
    /// Estimated matching results, when it can be bounded.
    pub estimated_matches: Option<u64>,
}

fn relatives_label(r: Relatives) -> &'static str {
    match r {
        Relatives::Neither => "neither",
        Relatives::Ancestors => "ancestors",
        Relatives::Descendants => "descendants",
        Relatives::Both => "both",
    }
}

/// Estimate output rows of one equality probe against a named index,
/// tagging the access description with how the number was (or wasn't)
/// obtained.
fn probe_estimate(store: &PTDataStore, index: &str, key: &[Value]) -> (String, Option<u64>) {
    let db = store.db();
    let est = db
        .index_id(index)
        .ok()
        .and_then(|idx| db.index_eq_estimate(idx, &encode_key_vec(key)))
        .map(|e| e.round() as u64);
    let source = if est.is_some() {
        "statistics"
    } else {
        "heuristic"
    };
    (format!("index-eq({index}) [{source}]"), est)
}

/// Average closure fan-out (relatives per seed) of one closure index.
fn closure_fanout(store: &PTDataStore, index: &str) -> Option<f64> {
    let db = store.db();
    db.index_id(index).ok().and_then(|i| db.index_avg_fanout(i))
}

fn plan_one(store: &PTDataStore, filter: &ResourceFilter) -> FilterPlan {
    let (access, seed) = match &filter.selector {
        Selector::ByType(tp) => match store.type_id(tp.as_str()) {
            Some(type_id) => probe_estimate(store, "resource_item_type", &[Value::Int(type_id)]),
            None => ("index-eq(resource_item_type) [statistics]".into(), Some(0)),
        },
        Selector::ByName(pattern) => {
            if pattern.starts_with('/') {
                probe_estimate(store, "resource_item_name", &[Value::Text(pattern.clone())])
            } else {
                let base = pattern.rsplit('/').next().unwrap_or(pattern);
                probe_estimate(
                    store,
                    "resource_item_base",
                    &[Value::Text(base.to_string())],
                )
            }
        }
        Selector::ByAttrs(preds) => match preds.first() {
            Some(p) => probe_estimate(
                store,
                "resource_attribute_name",
                &[Value::Text(p.attr.clone())],
            ),
            None => ("none".into(), Some(0)),
        },
    };
    // Expansion multiplies the seed set by the average closure fan-out.
    let estimated_family = seed.map(|s| {
        let mut total = s as f64;
        if matches!(filter.relatives, Relatives::Ancestors | Relatives::Both) {
            total += s as f64 * closure_fanout(store, "rha_resource").unwrap_or(0.0);
        }
        if matches!(filter.relatives, Relatives::Descendants | Relatives::Both) {
            total += s as f64 * closure_fanout(store, "rhd_resource").unwrap_or(0.0);
        }
        total.round() as u64
    });
    FilterPlan {
        access,
        relatives: filter.relatives,
        estimated_seed: seed,
        estimated_family,
    }
}

/// Plan a pr-filter query: cost each filter's seed access and expansion,
/// and order the match-stage family checks by estimated selectivity.
pub fn plan_filters(store: &PTDataStore, filters: &[ResourceFilter]) -> PrFilterPlan {
    let plans: Vec<FilterPlan> = filters.iter().map(|f| plan_one(store, f)).collect();
    let mut match_order: Vec<usize> = (0..plans.len()).collect();
    match_order.sort_by_key(|&i| plans[i].estimated_family.unwrap_or(u64::MAX));
    let schema: &Schema = store.schema();
    let estimated_contexts = store.db().table_stats_state(schema.focus).rows();
    // An empty family can't match anything; an empty filter list matches
    // every context. In between, context membership isn't estimable from
    // per-table statistics alone.
    let estimated_matches = if plans.iter().any(|p| p.estimated_family == Some(0)) {
        Some(0)
    } else if plans.is_empty() {
        estimated_contexts
    } else {
        None
    };
    PrFilterPlan {
        filters: plans,
        match_order,
        estimated_contexts,
        estimated_matches,
    }
}

/// Render a [`PrFilterPlan`] as a `pt-explain/v1` operator tree, using
/// the profiled-run operator vocabulary (`family[i]`, `context-map`,
/// `match`, `fetch` — documented in `docs/METRICS.md`).
pub fn explain_filters(plan: &PrFilterPlan) -> ExplainPlan {
    let mut root = ExplainNode::new("pr-filter", "").with_estimate(plan.estimated_matches);
    for (i, f) in plan.filters.iter().enumerate() {
        root = root.child(
            ExplainNode::new(
                &format!("family[{i}]"),
                &format!("{} relatives={}", f.access, relatives_label(f.relatives)),
            )
            .with_estimate(f.estimated_family),
        );
    }
    let order = plan
        .match_order
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    root = root
        .child(
            ExplainNode::new("context-map", "focus+focus_has_resource")
                .with_estimate(plan.estimated_contexts),
        )
        .child(
            ExplainNode::new("match", &format!("order=[{order}]"))
                .with_estimate(plan.estimated_matches),
        )
        .child(
            ExplainNode::new("fetch", "index-eq(performance_result_id)")
                .with_estimate(plan.estimated_matches),
        );
    ExplainPlan { root }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_data() -> PTDataStore {
        let store = PTDataStore::in_memory().unwrap();
        let mut ptdf = String::from("Application IRS\nResource /M grid\n");
        for n in 0..8 {
            ptdf.push_str(&format!("Resource /M/m{n} grid/machine\n"));
        }
        ptdf.push_str("Execution e1 IRS\n");
        ptdf.push_str("PerfResult e1 \"/M/m0(primary)\" IRS \"CPU time\" 1.0 seconds\n");
        store.load_ptdf_str(&ptdf).unwrap();
        store
    }

    #[test]
    fn unanalyzed_store_plans_without_estimates() {
        let store = store_with_data();
        let plan = plan_filters(&store, &[ResourceFilter::by_name("/M/m0")]);
        assert_eq!(plan.filters.len(), 1);
        assert!(plan.filters[0].access.contains("[heuristic]"));
        assert_eq!(plan.filters[0].estimated_family, None);
        assert_eq!(plan.match_order, vec![0]);
    }

    #[test]
    fn analyzed_store_estimates_and_orders_families() {
        let store = store_with_data();
        store.db().analyze().unwrap();
        let filters = vec![
            ResourceFilter::by_name("M").relatives(Relatives::Descendants),
            ResourceFilter::by_name("/M/m0").relatives(Relatives::Neither),
        ];
        let plan = plan_filters(&store, &filters);
        assert!(plan.filters[0].access.contains("[statistics]"));
        assert_eq!(plan.filters[1].estimated_family, Some(1));
        // The selective exact-name family is checked first.
        assert_eq!(plan.match_order[0], 1);
        assert!(
            plan.filters[0].estimated_family.unwrap() > 1,
            "descendant expansion multiplies the seed: {plan:?}"
        );
        let table = explain_filters(&plan).render_table();
        assert!(
            table.starts_with("plan (pt-explain/v1)\npr-filter"),
            "{table}"
        );
        assert!(table.contains("match  order=[1,0]"), "{table}");
    }

    #[test]
    fn unknown_names_estimate_to_zero_matches() {
        let store = store_with_data();
        store.db().analyze().unwrap();
        let plan = plan_filters(
            &store,
            &[ResourceFilter::by_type(
                perftrack_model::TypePath::new("no/such/type").unwrap(),
            )],
        );
        assert_eq!(plan.filters[0].estimated_family, Some(0));
        assert_eq!(plan.estimated_matches, Some(0));
    }
}
