//! Logical integrity verification for a PerfTrack store.
//!
//! The storage engine's `check` module verifies the physical layers:
//! slotted pages, B+trees, the WAL, and the catalog. This module layers
//! the PerfTrack-specific invariants of the paper's Figure 1 schema on
//! top and appends its findings to the same
//! [`FsckReport`](perftrack_store::check::FsckReport), so `pt fsck`
//! emits one unified report:
//!
//! * **Closure tables** — `resource_has_ancestor` must equal the
//!   transitive closure of `resource_item.parent_id` (excluding
//!   self-pairs), and `resource_has_descendant` must mirror it exactly.
//!   Delegated to [`perftrack_store::check::verify_closure`] (codes
//!   `closure.*`).
//! * **Referential integrity** — every foreign key in the schema must
//!   resolve to a live row (`ref.dangling`), and key columns must hold
//!   integers, with `NULL` allowed only where the schema says a root is
//!   legal (`ref.type`).

use crate::datastore::PTDataStore;
use crate::error::Result;
use crate::schema::col;
pub use perftrack_store::check::{Finding, FsckReport, Severity};

use perftrack_store::check::verify_closure;
use perftrack_store::{RowId, ScanIter, TableId, Value};
use std::collections::HashSet;

/// Verify a whole store: the storage engine's structural fsck plus the
/// PerfTrack logical checks described in the module docs.
///
/// `deep` is forwarded to the engine (index-entry ↔ row bijection
/// checks); the logical checks always run in full — they are linear in
/// the closure-table size either way.
pub fn verify_store(store: &PTDataStore, deep: bool) -> Result<FsckReport> {
    let mut report = store.db().verify(deep)?;
    check_closure(store, &mut report)?;
    check_references(store, &mut report)?;
    Ok(report)
}

/// Extract an integer key column, reporting `ref.type` when the value is
/// neither an integer nor an allowed `NULL`. Returns `Ok(None)` for an
/// allowed `NULL`, `Err(())` after reporting.
fn key_of(
    report: &mut FsckReport,
    object: &str,
    rid: RowId,
    value: &Value,
    nullable: bool,
) -> std::result::Result<Option<i64>, ()> {
    match value {
        Value::Null if nullable => Ok(None),
        v => match v.as_int() {
            Ok(id) => Ok(Some(id)),
            Err(_) => {
                report.push(Finding::external(
                    "ref.type",
                    Severity::Error,
                    object,
                    format!("row {rid:?}: expected an integer key, found {v:?}"),
                ));
                Err(())
            }
        },
    }
}

/// Rebuild the expected resource hierarchy closure from
/// `resource_item.parent_id` and diff it against the materialized
/// `resource_has_ancestor` / `resource_has_descendant` tables.
fn check_closure(store: &PTDataStore, report: &mut FsckReport) -> Result<()> {
    let db = store.db();
    let s = store.schema();

    let mut nodes: Vec<(i64, Option<i64>)> = Vec::new();
    for item in db.scan_iter(s.resource_item)? {
        let (rid, row) = item?;
        let Ok(Some(id)) = key_of(
            report,
            "resource_item.id",
            rid,
            &row[col::resource_item::ID],
            false,
        ) else {
            continue;
        };
        let Ok(parent) = key_of(
            report,
            "resource_item.parent_id",
            rid,
            &row[col::resource_item::PARENT_ID],
            true,
        ) else {
            continue;
        };
        nodes.push((id, parent));
    }

    let pairs =
        |table: TableId, object: &str, report: &mut FsckReport| -> Result<Vec<(i64, i64)>> {
            let mut out = Vec::new();
            for item in db.scan_iter(table)? {
                let (rid, row) = item?;
                let a = key_of(report, object, rid, &row[0], false);
                let b = key_of(report, object, rid, &row[1], false);
                if let (Ok(Some(a)), Ok(Some(b))) = (a, b) {
                    out.push((a, b));
                }
            }
            Ok(out)
        };
    let ancestors = pairs(s.resource_has_ancestor, "resource_has_ancestor", report)?;
    let descendants = pairs(s.resource_has_descendant, "resource_has_descendant", report)?;

    for f in verify_closure(&nodes, &ancestors, &descendants) {
        report.push(f);
    }
    Ok(())
}

/// One foreign-key constraint of the Figure 1 schema.
struct FkCheck {
    /// `table.column`, used as the finding object.
    object: &'static str,
    /// Which table holds the foreign key.
    table: TableId,
    /// Column ordinal of the key within that table.
    column: usize,
    /// Whether `NULL` marks a legal root (hierarchy parents).
    nullable: bool,
    /// Index into the referenced-id-set list below.
    parent: usize,
}

/// Verify every foreign key of the schema against the live primary-key
/// sets, reporting `ref.dangling` for each unresolved reference.
fn check_references(store: &PTDataStore, report: &mut FsckReport) -> Result<()> {
    let db = store.db();
    let s = store.schema();

    let id_set = |table: TableId, ordinal: usize| -> Result<HashSet<i64>> {
        let mut out = HashSet::new();
        for item in db.scan_iter(table)? {
            if let Ok(id) = item?.1[ordinal].as_int() {
                out.insert(id);
            }
        }
        Ok(out)
    };
    // Primary-key sets, indexed by `FkCheck::parent`.
    let parents: Vec<HashSet<i64>> = vec![
        id_set(s.application, col::application::ID)?,
        id_set(s.focus_framework, col::focus_framework::ID)?,
        id_set(s.resource_item, col::resource_item::ID)?,
        id_set(s.metric, col::metric::ID)?,
        id_set(s.performance_tool, col::performance_tool::ID)?,
        id_set(s.execution, col::execution::ID)?,
        id_set(s.performance_result, col::performance_result::ID)?,
        id_set(s.focus, col::focus::ID)?,
    ];
    const APP: usize = 0;
    const FF: usize = 1;
    const RES: usize = 2;
    const METRIC: usize = 3;
    const TOOL: usize = 4;
    const EXEC: usize = 5;
    const RESULT: usize = 6;
    const FOCUS: usize = 7;

    let checks = [
        FkCheck {
            object: "execution.application_id",
            table: s.execution,
            column: col::execution::APPLICATION_ID,
            nullable: false,
            parent: APP,
        },
        FkCheck {
            object: "focus_framework.parent_id",
            table: s.focus_framework,
            column: col::focus_framework::PARENT_ID,
            nullable: true,
            parent: FF,
        },
        FkCheck {
            object: "resource_item.focus_framework_id",
            table: s.resource_item,
            column: col::resource_item::FOCUS_FRAMEWORK_ID,
            nullable: false,
            parent: FF,
        },
        FkCheck {
            object: "resource_item.parent_id",
            table: s.resource_item,
            column: col::resource_item::PARENT_ID,
            nullable: true,
            parent: RES,
        },
        FkCheck {
            object: "resource_attribute.resource_id",
            table: s.resource_attribute,
            column: col::resource_attribute::RESOURCE_ID,
            nullable: false,
            parent: RES,
        },
        FkCheck {
            object: "resource_constraint.resource1_id",
            table: s.resource_constraint,
            column: col::resource_constraint::RESOURCE1_ID,
            nullable: false,
            parent: RES,
        },
        FkCheck {
            object: "resource_constraint.resource2_id",
            table: s.resource_constraint,
            column: col::resource_constraint::RESOURCE2_ID,
            nullable: false,
            parent: RES,
        },
        FkCheck {
            object: "resource_has_ancestor.resource_id",
            table: s.resource_has_ancestor,
            column: col::resource_has_ancestor::RESOURCE_ID,
            nullable: false,
            parent: RES,
        },
        FkCheck {
            object: "resource_has_ancestor.ancestor_id",
            table: s.resource_has_ancestor,
            column: col::resource_has_ancestor::ANCESTOR_ID,
            nullable: false,
            parent: RES,
        },
        FkCheck {
            object: "resource_has_descendant.resource_id",
            table: s.resource_has_descendant,
            column: col::resource_has_descendant::RESOURCE_ID,
            nullable: false,
            parent: RES,
        },
        FkCheck {
            object: "resource_has_descendant.descendant_id",
            table: s.resource_has_descendant,
            column: col::resource_has_descendant::DESCENDANT_ID,
            nullable: false,
            parent: RES,
        },
        FkCheck {
            object: "performance_result.execution_id",
            table: s.performance_result,
            column: col::performance_result::EXECUTION_ID,
            nullable: false,
            parent: EXEC,
        },
        FkCheck {
            object: "performance_result.metric_id",
            table: s.performance_result,
            column: col::performance_result::METRIC_ID,
            nullable: false,
            parent: METRIC,
        },
        FkCheck {
            object: "performance_result.tool_id",
            table: s.performance_result,
            column: col::performance_result::TOOL_ID,
            nullable: false,
            parent: TOOL,
        },
        FkCheck {
            object: "focus.result_id",
            table: s.focus,
            column: col::focus::RESULT_ID,
            nullable: false,
            parent: RESULT,
        },
        FkCheck {
            object: "focus_has_resource.focus_id",
            table: s.focus_has_resource,
            column: col::focus_has_resource::FOCUS_ID,
            nullable: false,
            parent: FOCUS,
        },
        FkCheck {
            object: "focus_has_resource.resource_id",
            table: s.focus_has_resource,
            column: col::focus_has_resource::RESOURCE_ID,
            nullable: false,
            parent: RES,
        },
    ];

    for c in &checks {
        check_fk(report, db.scan_iter(c.table)?, c, &parents[c.parent])?;
    }
    Ok(())
}

/// Check one foreign-key column of one table against its parent-id set,
/// streaming the table one page at a time.
fn check_fk(
    report: &mut FsckReport,
    rows: ScanIter<'_>,
    c: &FkCheck,
    parents: &HashSet<i64>,
) -> Result<()> {
    for item in rows {
        let (rid, row) = item?;
        let Ok(Some(id)) = key_of(report, c.object, rid, &row[c.column], c.nullable) else {
            continue;
        };
        if !parents.contains(&id) {
            report.push(Finding::external(
                "ref.dangling",
                Severity::Error,
                c.object,
                format!("row {rid:?}: value {id} references no live row"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datastore::PTDataStore;

    const GOOD: &str = "\
Application IRS
Execution irs-mcr-008 IRS
Resource /MCRGrid grid
Resource /MCRGrid/MCR grid/machine
Resource /MCRGrid/MCR/batch grid/machine/partition
Resource /MCRGrid/MCR/batch/n1 grid/machine/partition/node
ResourceAttribute /MCRGrid/MCR/batch/n1 os linux string
PerfResult irs-mcr-008 /MCRGrid/MCR/batch/n1(primary) IRS \"CPU time\" 42.5 seconds
";

    fn loaded_store() -> PTDataStore {
        let store = PTDataStore::in_memory().unwrap();
        store.load_ptdf_str(GOOD).unwrap();
        store
    }

    #[test]
    fn clean_store_verifies_clean() {
        let store = loaded_store();
        let report = verify_store(&store, true).unwrap();
        assert_eq!(report.error_count(), 0, "unexpected: {}", report.summary());
    }

    #[test]
    fn dangling_foreign_key_detected() {
        let store = loaded_store();
        let s = *store.schema();
        let mut txn = store.db().begin();
        txn.insert(
            s.execution,
            vec![
                Value::Int(999_000),
                Value::Text("ghost-run".into()),
                Value::Int(424_242), // no such application
            ],
        )
        .unwrap();
        txn.commit().unwrap();

        let report = verify_store(&store, false).unwrap();
        assert!(report.error_count() > 0);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "ref.dangling" && f.object == "execution.application_id"));
    }

    #[test]
    fn closure_table_drift_detected() {
        let store = loaded_store();
        let s = *store.schema();

        // Forge an extra ancestor pair that the parent chain does not imply:
        // claim cpu0 is its own sibling's descendant. Any two live resource
        // ids that are not in an ancestor relationship will do; easiest is
        // to reverse an existing pair.
        let (_rid, row) = store
            .db()
            .scan(s.resource_has_ancestor)
            .unwrap()
            .into_iter()
            .next()
            .expect("loader materialized at least one ancestor pair");
        let node = row[col::resource_has_ancestor::RESOURCE_ID]
            .as_int()
            .unwrap();
        let anc = row[col::resource_has_ancestor::ANCESTOR_ID]
            .as_int()
            .unwrap();
        let mut txn = store.db().begin();
        txn.insert(
            s.resource_has_ancestor,
            vec![Value::Int(anc), Value::Int(node)],
        )
        .unwrap();
        txn.commit().unwrap();

        let report = verify_store(&store, false).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "closure.extra" || f.code == "closure.cycle"));
        // The forged pair also breaks the ancestor/descendant mirror.
        assert!(report.findings.iter().any(|f| f.code == "closure.mirror"));
    }
}
