//! Performance prediction models (§6: "we plan to explore the
//! incorporation of performance predictions and models into PerfTrack for
//! direct comparison to actual program runs").
//!
//! A [`ScalingModel`] is fit from the executions already in the data
//! store: for a chosen metric (and optionally a specific context
//! resource), observations `(process count, value)` are fit to the
//! Amdahl-style form `T(p) = serial + parallel / p` by least squares on
//! the transformed regressor `x = 1/p`. Predictions can be compared
//! against held-out runs, and stored back into PerfTrack as ordinary
//! performance results (tool `PerfTrackModel`) so the existing query and
//! comparison machinery treats them like measurements.

use crate::compare::Compare;
use crate::datastore::PTDataStore;
use crate::error::{PtError, Result};
use crate::query::{QueryEngine, ResultRow};
use perftrack_model::{PerformanceResult, ResourceName, ResourceSet};

/// One observation used to fit a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    pub processes: usize,
    pub value: f64,
}

/// An Amdahl-style scaling model `T(p) = serial + parallel / p`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingModel {
    pub metric: String,
    pub serial: f64,
    pub parallel: f64,
    /// Coefficient of determination over the training observations.
    pub r_squared: f64,
    pub observations: Vec<Observation>,
}

impl ScalingModel {
    /// Fit from observations by least squares on `x = 1/p`. Needs at
    /// least two distinct process counts.
    pub fn fit(metric: &str, observations: &[Observation]) -> Result<ScalingModel> {
        let distinct: std::collections::BTreeSet<usize> =
            observations.iter().map(|o| o.processes).collect();
        if distinct.len() < 2 {
            return Err(PtError::Invalid(format!(
                "scaling fit needs ≥2 distinct process counts, got {}",
                distinct.len()
            )));
        }
        let n = observations.len() as f64;
        let xs: Vec<f64> = observations
            .iter()
            .map(|o| 1.0 / o.processes as f64)
            .collect();
        let ys: Vec<f64> = observations.iter().map(|o| o.value).collect();
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return Err(PtError::Invalid("degenerate regression".into()));
        }
        let mut parallel = (n * sxy - sx * sy) / denom;
        let mut serial = (sy - parallel * sx) / n;
        // Physical constraint: the serial fraction cannot be negative.
        // Noise can push the unconstrained fit slightly below zero, which
        // makes efficiency extrapolations blow up; clamp and refit the
        // slope through the origin instead.
        if serial < 0.0 {
            serial = 0.0;
            parallel = sxy / sxx;
        }
        // R².
        let mean = sy / n;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (y - (serial + parallel * x)).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Ok(ScalingModel {
            metric: metric.to_string(),
            serial,
            parallel,
            r_squared,
            observations: observations.to_vec(),
        })
    }

    /// Predicted value at `processes`.
    pub fn predict(&self, processes: usize) -> f64 {
        self.serial + self.parallel / processes as f64
    }

    /// Predicted parallel efficiency at `processes` relative to the
    /// smallest trained process count.
    pub fn efficiency(&self, processes: usize) -> f64 {
        let p0 = self
            .observations
            .iter()
            .map(|o| o.processes)
            .min()
            .unwrap_or(1);
        let t0 = self.predict(p0);
        let tp = self.predict(processes);
        (t0 * p0 as f64) / (tp * processes as f64)
    }
}

/// Model fitting and prediction over a data store.
pub struct Predictor<'s> {
    store: &'s PTDataStore,
}

/// How a prediction compared to a real run.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionCheck {
    pub execution: String,
    pub processes: usize,
    pub predicted: f64,
    pub actual: f64,
    /// `(actual - predicted) / actual`.
    pub relative_error: f64,
}

impl<'s> Predictor<'s> {
    /// Bind to a store.
    pub fn new(store: &'s PTDataStore) -> Self {
        Predictor { store }
    }

    /// Observations of `metric` per execution, reading the process count
    /// from the run resource's `processes` attribute (PTrun/IRS capture
    /// both record it).
    pub fn observations(&self, metric: &str, executions: &[&str]) -> Result<Vec<Observation>> {
        let engine = QueryEngine::new(self.store);
        let all = engine.run(&[])?;
        let mut out = Vec::new();
        for exec in executions {
            let rows: Vec<&ResultRow> = all
                .iter()
                .filter(|r| r.execution == *exec && r.metric == metric)
                .collect();
            if rows.is_empty() {
                return Err(PtError::NotFound(format!("{metric} for execution {exec}")));
            }
            let processes = self.processes_of(rows[0])?;
            // Mean over matching rows (usually one).
            let value = rows.iter().map(|r| r.value).sum::<f64>() / rows.len() as f64;
            out.push(Observation { processes, value });
        }
        Ok(out)
    }

    fn processes_of(&self, row: &ResultRow) -> Result<usize> {
        for &res in &row.context {
            let attrs = self.store.attributes_of(res)?;
            for (name, value, _) in attrs {
                if name == "processes" || name == "process count" {
                    if let Ok(n) = value.parse() {
                        return Ok(n);
                    }
                }
            }
        }
        Err(PtError::NotFound(format!(
            "process count attribute in context of result {}",
            row.result_id
        )))
    }

    /// Fit a scaling model for `metric` from the named executions.
    pub fn fit_scaling(&self, metric: &str, executions: &[&str]) -> Result<ScalingModel> {
        let obs = self.observations(metric, executions)?;
        ScalingModel::fit(metric, &obs)
    }

    /// Compare the model against a held-out execution.
    pub fn check(&self, model: &ScalingModel, execution: &str) -> Result<PredictionCheck> {
        let obs = self.observations(&model.metric, &[execution])?;
        let o = obs[0];
        let predicted = model.predict(o.processes);
        Ok(PredictionCheck {
            execution: execution.to_string(),
            processes: o.processes,
            predicted,
            actual: o.value,
            relative_error: (o.value - predicted) / o.value,
        })
    }

    /// Store a model's prediction as a performance result (tool
    /// `PerfTrackModel`) on a *predicted* execution, so it can be compared
    /// to real runs with the ordinary comparison operators.
    pub fn store_prediction(
        &self,
        model: &ScalingModel,
        predicted_exec: &str,
        application: &str,
        processes: usize,
        context: Vec<ResourceName>,
        units: &str,
    ) -> Result<i64> {
        let mut loader = self.store.begin_load();
        loader.ensure_execution(predicted_exec, application)?;
        let run = format!("/{predicted_exec}-run");
        loader.ensure_resource(&run, "execution")?;
        loader.add_attribute(
            &run,
            "processes",
            &processes.to_string(),
            perftrack_ptdf::AttrType::String,
        )?;
        loader.add_attribute(&run, "predicted", "true", perftrack_ptdf::AttrType::String)?;
        let mut resources = vec![ResourceName::new(&run).map_err(PtError::Model)?];
        resources.extend(context);
        let id = loader.add_performance_result(&PerformanceResult {
            execution: predicted_exec.to_string(),
            metric: model.metric.clone(),
            value: model.predict(processes),
            units: units.to_string(),
            tool: "PerfTrackModel".to_string(),
            resource_sets: vec![ResourceSet::primary(resources)],
        })?;
        loader.commit()?;
        Ok(id)
    }

    /// Convenience: compare a stored prediction against a real execution
    /// with the comparison engine.
    pub fn compare_prediction(
        &self,
        predicted_exec: &str,
        actual_exec: &str,
    ) -> Result<crate::compare::ComparisonReport> {
        Compare::new(self.store).compare_executions(predicted_exec, actual_exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_amdahl_parameters() {
        // T(p) = 2 + 40/p exactly.
        let obs: Vec<Observation> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| Observation {
                processes: p,
                value: 2.0 + 40.0 / p as f64,
            })
            .collect();
        let m = ScalingModel::fit("wall time", &obs).unwrap();
        assert!((m.serial - 2.0).abs() < 1e-9, "serial {}", m.serial);
        assert!((m.parallel - 40.0).abs() < 1e-9);
        assert!(m.r_squared > 0.999999);
        assert!((m.predict(32) - (2.0 + 40.0 / 32.0)).abs() < 1e-9);
        // Efficiency falls with p when there is a serial fraction.
        assert!(m.efficiency(16) < m.efficiency(2));
    }

    #[test]
    fn fit_requires_two_process_counts() {
        let obs = vec![
            Observation {
                processes: 4,
                value: 10.0,
            },
            Observation {
                processes: 4,
                value: 11.0,
            },
        ];
        assert!(ScalingModel::fit("m", &obs).is_err());
    }

    #[test]
    fn fit_tolerates_noise() {
        let obs: Vec<Observation> = [2usize, 4, 8, 16, 32]
            .iter()
            .enumerate()
            .map(|(i, &p)| Observation {
                processes: p,
                value: (1.0 + 100.0 / p as f64) * (1.0 + 0.02 * ((i % 3) as f64 - 1.0)),
            })
            .collect();
        let m = ScalingModel::fit("t", &obs).unwrap();
        assert!((m.parallel - 100.0).abs() / 100.0 < 0.1);
        assert!(m.r_squared > 0.99);
    }

    fn store_with_sweep(nps: &[usize]) -> PTDataStore {
        let store = PTDataStore::in_memory().unwrap();
        let mut ptdf = String::from("Application A\nResource /A application\n");
        for &np in nps {
            let exec = format!("e{np}");
            ptdf.push_str(&format!("Execution {exec} A\n"));
            ptdf.push_str(&format!("Resource /{exec}-run execution\n"));
            ptdf.push_str(&format!(
                "ResourceAttribute /{exec}-run processes {np} string\n"
            ));
            ptdf.push_str(&format!(
                "PerfResult {exec} \"/A,/{exec}-run(primary)\" T \"solve time\" {} seconds\n",
                3.0 + 120.0 / np as f64
            ));
        }
        store.load_ptdf_str(&ptdf).unwrap();
        store
    }

    #[test]
    fn fit_from_store_and_check_holdout() {
        let store = store_with_sweep(&[4, 8, 16, 32, 64]);
        let p = Predictor::new(&store);
        // Train on four, hold out np=64.
        let model = p
            .fit_scaling("solve time", &["e4", "e8", "e16", "e32"])
            .unwrap();
        assert!((model.serial - 3.0).abs() < 1e-6);
        assert!((model.parallel - 120.0).abs() < 1e-6);
        let check = p.check(&model, "e64").unwrap();
        assert_eq!(check.processes, 64);
        assert!(check.relative_error.abs() < 1e-6, "{check:?}");
    }

    #[test]
    fn missing_metric_or_attribute_errors() {
        let store = store_with_sweep(&[4, 8]);
        let p = Predictor::new(&store);
        assert!(p.fit_scaling("no such metric", &["e4", "e8"]).is_err());
        assert!(p.observations("solve time", &["ghost"]).is_err());
    }

    #[test]
    fn stored_prediction_is_comparable_to_reality() {
        let store = store_with_sweep(&[4, 8, 16, 32, 128]);
        let p = Predictor::new(&store);
        let model = p
            .fit_scaling("solve time", &["e4", "e8", "e16", "e32"])
            .unwrap();
        p.store_prediction(
            &model,
            "predicted-128",
            "A",
            128,
            vec![ResourceName::new("/A").unwrap()],
            "seconds",
        )
        .unwrap();
        // The prediction behaves like a measurement: the comparison
        // operators align it against the real np=128 run.
        let report = p.compare_prediction("predicted-128", "e128").unwrap();
        assert_eq!(report.rows.len(), 1);
        let ratio = report.rows[0].ratio.unwrap();
        assert!((ratio - 1.0).abs() < 0.01, "prediction within 1%: {ratio}");
        // Predicted executions are flagged.
        let run = store
            .resource_by_name("/predicted-128-run")
            .unwrap()
            .unwrap();
        let attrs = store.attributes_of(run.id).unwrap();
        assert!(attrs
            .iter()
            .any(|(n, v, _)| n == "predicted" && v == "true"));
    }
}
