//! Bar-chart construction and rendering (the Figure 5 display).
//!
//! The paper's Qt GUI draws multi-series bar charts of selected data (min
//! and max running time across processors per process count, in the
//! figure). This module produces the same artifact as a structured value
//! renderable to ASCII for terminals and to CSV for spreadsheets — the
//! paper's own fallback path ("users can always export the data").

use std::fmt::Write as _;

/// One named series of values, one value per category.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub name: String,
    pub values: Vec<f64>,
}

/// A multi-series bar chart.
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    pub title: String,
    /// X-axis labels (e.g. process counts).
    pub categories: Vec<String>,
    pub series: Vec<Series>,
    /// Y-axis unit label.
    pub units: String,
}

impl BarChart {
    /// Create a chart; every series must have one value per category.
    pub fn new(title: &str, categories: Vec<String>, series: Vec<Series>, units: &str) -> Self {
        for s in &series {
            assert_eq!(
                s.values.len(),
                categories.len(),
                "series {} length mismatch",
                s.name
            );
        }
        BarChart {
            title: title.to_string(),
            categories,
            series,
            units: units.to_string(),
        }
    }

    /// Largest value across all series (0.0 for an empty chart).
    pub fn max_value(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.values.iter())
            .fold(0.0f64, |a, &b| a.max(b))
    }

    /// Render as horizontal ASCII bars, grouped by category.
    pub fn render_ascii(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} [{}]", self.title, self.units);
        let max = self.max_value();
        let label_w = self
            .categories
            .iter()
            .map(String::len)
            .chain(self.series.iter().map(|s| s.name.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let bar_w = width.saturating_sub(label_w + 16).max(10);
        for (ci, cat) in self.categories.iter().enumerate() {
            let _ = writeln!(out, "{cat:label_w$}");
            for s in &self.series {
                let v = s.values[ci];
                let filled = if max > 0.0 {
                    ((v / max) * bar_w as f64).round() as usize
                } else {
                    0
                };
                let _ = writeln!(
                    out,
                    "  {:label_w$} |{}{}| {:.4}",
                    s.name,
                    "█".repeat(filled),
                    " ".repeat(bar_w - filled.min(bar_w)),
                    v
                );
            }
        }
        out
    }

    /// Render as a standalone SVG document — the §6 "richer visualization
    /// interface" extension. Grouped vertical bars, one color per series,
    /// with a legend and y-axis gridlines.
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        const COLORS: [&str; 6] = [
            "#4878a8", "#c85a5a", "#6aa84f", "#8e63ae", "#d8904f", "#5ab4ac",
        ];
        let margin_left = 64.0;
        let margin_bottom = 48.0;
        let margin_top = 40.0;
        let margin_right = 16.0;
        let plot_w = width as f64 - margin_left - margin_right;
        let plot_h = height as f64 - margin_top - margin_bottom;
        let max = self.max_value().max(1e-12);
        let ncat = self.categories.len().max(1);
        let nser = self.series.len().max(1);
        let group_w = plot_w / ncat as f64;
        let bar_w = (group_w * 0.8) / nser as f64;

        let mut svg = String::with_capacity(4096);
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
        ));
        svg.push_str(&format!(
            r#"<rect width="{width}" height="{height}" fill="white"/>"#
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{} [{}]</text>"#,
            width as f64 / 2.0,
            xml_escape(&self.title),
            xml_escape(&self.units)
        ));
        // Gridlines + y labels.
        for i in 0..=4 {
            let frac = i as f64 / 4.0;
            let y = margin_top + plot_h * (1.0 - frac);
            svg.push_str(&format!(
                r##"<line x1="{margin_left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                margin_left + plot_w
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="end">{:.3}</text>"#,
                margin_left - 6.0,
                y + 3.0,
                max * frac
            ));
        }
        // Bars.
        for (ci, _cat) in self.categories.iter().enumerate() {
            for (si, s) in self.series.iter().enumerate() {
                let v = s.values[ci];
                let h = plot_h * (v / max);
                let x = margin_left + ci as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
                let y = margin_top + plot_h - h;
                svg.push_str(&format!(
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{h:.1}" fill="{}"><title>{}: {v}</title></rect>"#,
                    bar_w.max(1.0) - 1.0,
                    COLORS[si % COLORS.len()],
                    xml_escape(&s.name)
                ));
            }
        }
        // Category labels.
        for (ci, cat) in self.categories.iter().enumerate() {
            let x = margin_left + (ci as f64 + 0.5) * group_w;
            svg.push_str(&format!(
                r#"<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
                margin_top + plot_h + 16.0,
                xml_escape(cat)
            ));
        }
        // Legend.
        for (si, s) in self.series.iter().enumerate() {
            let x = margin_left + si as f64 * 110.0;
            let y = height as f64 - 12.0;
            svg.push_str(&format!(
                r#"<rect x="{x:.1}" y="{:.1}" width="10" height="10" fill="{}"/>"#,
                y - 9.0,
                COLORS[si % COLORS.len()]
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{y:.1}" font-family="sans-serif" font-size="11">{}</text>"#,
                x + 14.0,
                xml_escape(&s.name)
            ));
        }
        svg.push_str("</svg>");
        svg
    }

    /// Render as CSV (categories as rows, series as columns) for import
    /// into a spreadsheet, the workflow §4.1 describes.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "category");
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.name));
        }
        let _ = writeln!(out);
        for (ci, cat) in self.categories.iter().enumerate() {
            let _ = write!(out, "{}", csv_escape(cat));
            for s in &self.series {
                let _ = write!(out, ",{}", s.values[ci]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Escape text for inclusion in SVG/XML.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Quote a CSV field when needed.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart::new(
            "min/max time per process count",
            vec!["np=8".into(), "np=16".into(), "np=32".into()],
            vec![
                Series {
                    name: "min".into(),
                    values: vec![1.0, 0.6, 0.4],
                },
                Series {
                    name: "max".into(),
                    values: vec![1.4, 1.1, 0.9],
                },
            ],
            "seconds",
        )
    }

    #[test]
    fn ascii_contains_all_labels_and_values() {
        let text = chart().render_ascii(80);
        for needle in [
            "np=8", "np=16", "np=32", "min", "max", "1.4000", "0.4000", "seconds",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn bars_scale_with_values() {
        let text = chart().render_ascii(80);
        let count_bars = |line: &str| line.matches('█').count();
        let lines: Vec<&str> = text.lines().collect();
        // Within np=8, max (1.4) has more filled cells than min (1.0).
        let min_line = lines
            .iter()
            .find(|l| l.contains("min") && l.contains("1.0000"))
            .unwrap();
        let max_line = lines
            .iter()
            .find(|l| l.contains("max") && l.contains("1.4000"))
            .unwrap();
        assert!(count_bars(max_line) > count_bars(min_line));
    }

    #[test]
    fn csv_output_parses() {
        let csv = chart().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "category,min,max");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("np=8,1,"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn svg_output_is_well_formed_and_complete() {
        let svg = chart().to_svg(640, 360);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One bar per (category, series) pair plus the legend swatches.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + 3 * 2 + 2, "background + bars + legend");
        for needle in ["np=8", "np=16", "np=32", "min", "max", "seconds"] {
            assert!(svg.contains(needle), "missing {needle}");
        }
        // Balanced tags.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn svg_escapes_markup_in_labels() {
        let c = BarChart::new(
            "a < b & \"c\"",
            vec!["x<y".into()],
            vec![Series {
                name: "s>1".into(),
                values: vec![1.0],
            }],
            "u",
        );
        let svg = c.to_svg(300, 200);
        assert!(svg.contains("a &lt; b &amp; &quot;c&quot;"));
        assert!(svg.contains("x&lt;y"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn empty_chart_renders() {
        let c = BarChart::new("empty", vec![], vec![], "s");
        assert_eq!(c.max_value(), 0.0);
        assert!(c.render_ascii(40).contains("empty"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        BarChart::new(
            "bad",
            vec!["a".into()],
            vec![Series {
                name: "s".into(),
                values: vec![1.0, 2.0],
            }],
            "u",
        );
    }
}
