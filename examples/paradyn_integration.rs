//! Case study §4.3 — Incorporating Paradyn Performance Data.
//!
//! Reproduces the paper's third case study: take Paradyn's exported
//! session data (resources list, histogram index, histogram files) for
//! three IRS executions on MCR, map Paradyn's resource hierarchy onto
//! PerfTrack's (Figure 11) — Code → build, Machine → execution with nodes
//! as process attributes, SyncObject → a brand-new top-level hierarchy —
//! convert to PTdf, and load into an *existing* PerfTrack store. Bins
//! recorded before dynamic instrumentation was inserted (`nan`) produce no
//! results, so counts vary across the three executions.
//!
//! Run with: `cargo run --example paradyn_integration`

use perftrack::QueryEngine;
use perftrack_suite::adapters::{self, ParadynFiles};
use perftrack_suite::prelude::*;
use perftrack_suite::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An existing store: machine data already present (as in the paper,
    // where IRS/MCR data from §4.1 was already loaded).
    let store = PTDataStore::in_memory()?;
    store.load_statements(&MachineModel::mcr().to_ptdf(4))?;
    println!(
        "starting from an existing store with {} resources",
        store.resource_count()?
    );
    let types_before = store.registry().len();

    // Three Paradyn-exported IRS executions. `small: false` is the paper's
    // ~17k-resource scale; we use a mid-size config here for a quick run.
    let bundles = workloads::paradyn_irs(7, 3, true);
    for bundle in &bundles {
        let files = ParadynFiles {
            resources: bundle.export.resources.content.clone(),
            index: bundle.export.index.content.clone(),
            histograms: bundle
                .export
                .histograms
                .iter()
                .map(|f| (f.name.clone(), f.content.clone()))
                .collect(),
            shg: Some(bundle.export.shg.content.clone()),
        };
        let ctx = ExecContext::new(&bundle.exec_name, "IRS");
        let stmts = adapters::paradyn::convert(&ctx, &files)?;
        let stats = store.load_statements(&stmts)?;
        println!(
            "{}: +{} resources, +{} results ({} PTdf statements)",
            bundle.exec_name, stats.resources, stats.results, stats.statements
        );
    }

    // The new top-level hierarchy exists alongside the base types.
    let registry = store.registry();
    println!(
        "\ntype system grew from {types_before} to {} types; syncObject registered: {}",
        registry.len(),
        registry.contains("syncObject/class/instance")
    );

    // Machine nodes became process attributes (Fig. 11's mapping).
    let engine = QueryEngine::new(&store);
    let procs = engine.family(&ResourceFilter::by_type(
        TypePath::new("execution/process").unwrap(),
    ))?;
    let mut node_attrs = 0;
    for &id in &procs {
        if store.attributes_of(id)?.iter().any(|(n, _, _)| n == "node") {
            node_attrs += 1;
        }
    }
    println!(
        "{node_attrs}/{} process resources carry a node attribute",
        procs.len()
    );

    // Query Paradyn data through the ordinary pr-filter machinery: cpu
    // time for one code function across time bins.
    let rows = engine.run(&[
        ResourceFilter::by_name("/IRS-pd/irs_mod_00.c").relatives(Relatives::Descendants)
    ])?;
    println!(
        "\n{} results for module irs_mod_00.c; metrics: {:?}",
        rows.len(),
        rows.iter()
            .map(|r| r.metric.as_str())
            .collect::<std::collections::BTreeSet<_>>()
    );

    // Time bins: each result's context includes a time/interval resource
    // with start/end attributes.
    if let Some(row) = rows.first() {
        for &res in &row.context {
            let rec = store.resource_by_id(res)?.unwrap();
            let attrs = store.attributes_of(res)?;
            let attr_str: Vec<String> = attrs.iter().map(|(n, v, _)| format!("{n}={v}")).collect();
            println!("  context: {} [{}]", rec.name, attr_str.join(", "));
        }
    }

    // Counts vary per execution (dynamic instrumentation timing).
    let mut per_exec: std::collections::BTreeMap<String, usize> = Default::default();
    for r in engine.run(&[])? {
        if r.tool == "Paradyn" {
            *per_exec.entry(r.execution).or_default() += 1;
        }
    }
    println!("\nParadyn results per execution (varies, as in the paper):");
    for (exec, n) in &per_exec {
        println!("  {exec}: {n}");
    }
    let distinct: std::collections::BTreeSet<_> = per_exec.values().collect();
    assert!(
        distinct.len() > 1,
        "executions should differ in result counts"
    );

    // The Performance Consultant's search history graph is loaded too:
    // list the confirmed (true) hypotheses — Paradyn's diagnoses — with
    // the resources they implicate.
    println!("\nPerformance Consultant diagnoses (true SHG nodes):");
    let nodes = engine.family(&ResourceFilter::by_type(
        TypePath::new("searchHistory/node").unwrap(),
    ))?;
    let mut shown = 0;
    for id in nodes {
        let attrs = store.attributes_of(id)?;
        let get = |k: &str| {
            attrs
                .iter()
                .find(|(n, _, _)| n == k)
                .map(|(_, v, _)| v.clone())
        };
        if get("state").as_deref() == Some("true") {
            if let (Some(h), Some(f)) = (get("hypothesis"), get("focus")) {
                if h != "TopLevelHypothesis" && shown < 6 {
                    println!("  {h:<26} @ {f}");
                    shown += 1;
                }
            }
        }
    }
    assert!(shown > 0, "at least one confirmed diagnosis");
    Ok(())
}
