//! Case study §4.2 — A Noise Analysis Study.
//!
//! Reproduces the paper's second case study: SMG2000 runs from an OS-noise
//! study on two new platforms — UV (128-node Power4+ SMP cluster, noisy)
//! and BlueGene/L (quiet) — with three kinds of performance data per the
//! paper's Figures 7 and 8: the standard benchmark output, PMAPI hardware
//! counters, and mpiP profiles whose caller/callee breakdown exercises
//! multiple resource sets per result.
//!
//! Run with: `cargo run --example noise_analysis_study`

use perftrack::QueryEngine;
use perftrack_suite::adapters;
use perftrack_suite::prelude::*;
use perftrack_suite::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = PTDataStore::in_memory()?;

    // Step 1 (paper): add descriptive data for the two new platforms.
    for machine in [MachineModel::uv(), MachineModel::bgl()] {
        let stats = store.load_statements(&machine.to_ptdf(2))?;
        println!(
            "described {}: {} resources ({} total nodes in attributes)",
            machine.name,
            stats.resources,
            machine.partitions.iter().map(|p| p.1).sum::<usize>()
        );
    }

    // Step 2: load the study data — a few executions per platform here
    // (the bench harness loads the full Table 1 volumes).
    let mut loaded = 0usize;
    for bundle in workloads::smg_uv(42, 4) {
        let ctx = ExecContext::new(&bundle.exec_name, &bundle.application);
        // File 1: SMG stdout with PMAPI counters appended (Fig. 7).
        let smg = adapters::smg::convert(&ctx, &bundle.files[0].content)?;
        store.load_statements(&smg)?;
        // File 2: the mpiP report (Fig. 8).
        let mpip = adapters::mpip::convert(&ctx, &bundle.files[1].content)?;
        store.load_statements(&mpip)?;
        loaded += 1;
    }
    for bundle in workloads::smg_bgl(42, 6) {
        let ctx = ExecContext::new(&bundle.exec_name, &bundle.application);
        let smg = adapters::smg::convert(&ctx, &bundle.files[0].content)?;
        store.load_statements(&smg)?;
        loaded += 1;
    }
    println!(
        "\nloaded {loaded} executions: {} resources, {} results, {} metrics",
        store.resource_count()?,
        store.result_count()?,
        store.metrics().len()
    );

    // The noise signal: solve-time spread across runs per platform.
    let engine = QueryEngine::new(&store);
    let all = engine.run(&[])?;
    let spread = |prefix: &str| -> (usize, f64) {
        let vals: Vec<f64> = all
            .iter()
            .filter(|r| r.execution.starts_with(prefix) && r.metric == "SMG Solve wall clock time")
            .map(|r| r.value)
            .collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(0.0f64, f64::max);
        (vals.len(), (max - min) / min)
    };
    let (n_uv, uv_spread) = spread("smg-uv");
    let (n_bgl, bgl_spread) = spread("smg-bgl");
    println!("\nOS-noise signal (solve wall-time spread across identical runs):");
    println!("  UV : {n_uv} runs, spread {:.1}%", uv_spread * 100.0);
    println!("  BG/L: {n_bgl} runs, spread {:.1}%", bgl_spread * 100.0);
    assert!(
        uv_spread > bgl_spread,
        "the noisy platform must show more run-to-run variation"
    );

    // The mpiP caller/callee view: MPI time by *calling* function, which
    // only works because results carry multiple resource sets (§4.2).
    println!("\nmpiP callsite data by calling function (caller → mean ms, results):");
    let rows = engine.run(&[ResourceFilter::by_name("/SMG2000-code")])?;
    use std::collections::BTreeMap;
    let mut by_caller: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for r in rows.iter().filter(|r| r.metric == "Callsite Mean") {
        // The caller is the build-hierarchy function in the context.
        for &res in &r.context {
            if let Some(rec) = store.resource_by_id(res)? {
                if rec.name.contains("-code/") && rec.name.matches('/').count() == 3 {
                    let e = by_caller.entry(rec.base_name.clone()).or_insert((0.0, 0));
                    e.0 += r.value;
                    e.1 += 1;
                }
            }
        }
    }
    for (caller, (sum, n)) in &by_caller {
        println!(
            "  {caller:<28} {:>8.3} ms over {n} callsite rows",
            sum / *n as f64
        );
    }
    assert!(!by_caller.is_empty(), "caller attribution must resolve");

    // PMAPI counters per process, tied to the execution hierarchy.
    let uv_exec = "smg-uv-0000";
    let rows = engine.run(&[ResourceFilter::by_name(&format!("/{uv_exec}-run"))])?;
    let pmapi = rows.iter().filter(|r| r.tool == "PMAPI").count();
    println!("\n{uv_exec}: {pmapi} PMAPI counter results attached to processes");
    Ok(())
}
