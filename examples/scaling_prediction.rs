//! Performance prediction (§6: "incorporation of performance predictions
//! and models into PerfTrack for direct comparison to actual program
//! runs").
//!
//! Fit an Amdahl-style scaling model from a parameter study already in
//! the data store, validate it against a held-out run, store the model's
//! prediction for an untested process count *as a performance result*,
//! and compare prediction vs reality with the ordinary comparison
//! operators.
//!
//! Run with: `cargo run --example scaling_prediction`

use perftrack::{Predictor, QueryEngine};
use perftrack_suite::adapters::{self, ExecContext};
use perftrack_suite::prelude::*;
use perftrack_suite::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = PTDataStore::in_memory()?;

    // A parameter study: IRS at np ∈ {8..256} on MCR.
    let nps = [8usize, 16, 32, 64, 128, 256];
    for bundle in workloads::irs_scaling_sweep(99, "MCR", &nps) {
        let files: Vec<(String, String)> = bundle
            .files
            .iter()
            .map(|f| (f.name.clone(), f.content.clone()))
            .collect();
        let ctx = ExecContext::new(&bundle.exec_name, "IRS");
        store.load_statements(&adapters::irs::convert(&ctx, &files)?)?;
    }
    println!(
        "parameter study loaded: {} executions, {} results",
        store.executions().len(),
        store.result_count()?
    );

    // Fit on the four smallest process counts; hold out np=128 and 256.
    let predictor = Predictor::new(&store);
    let metric = "CPU_time (average)";
    let train: Vec<String> = nps[..4]
        .iter()
        .map(|np| format!("irs-mcr-np{np:03}"))
        .collect();
    let train_refs: Vec<&str> = train.iter().map(String::as_str).collect();
    let model = predictor.fit_scaling(metric, &train_refs)?;
    println!(
        "\nmodel: T(p) = {:.5} + {:.4}/p   (R² = {:.4}, trained on np ≤ 64)",
        model.serial, model.parallel, model.r_squared
    );

    // Validate against the held-out runs.
    println!("\nholdout validation:");
    for np in [128usize, 256] {
        let check = predictor.check(&model, &format!("irs-mcr-np{np:03}"))?;
        println!(
            "  np={np:<4} predicted {:.4}s  actual {:.4}s  error {:+.2}%",
            check.predicted,
            check.actual,
            check.relative_error * 100.0
        );
        assert!(
            check.relative_error.abs() < 0.25,
            "prediction within 25% of reality"
        );
    }

    // Store a prediction for an *untested* scale as a first-class result,
    // flagged `predicted=true`, then query it back like any measurement.
    let app = ResourceName::new("/IRS")?;
    predictor.store_prediction(
        &model,
        "irs-mcr-predicted-1024",
        "IRS",
        1024,
        vec![app],
        "seconds",
    )?;
    let engine = QueryEngine::new(&store);
    let rows =
        engine
            .run(&[ResourceFilter::by_name("/irs-mcr-predicted-1024-run")
                .relatives(Relatives::Neither)])?;
    println!("\nstored prediction queryable like a measurement:");
    for r in &rows {
        println!(
            "  {} | {} | {:.5} {} | tool={}",
            r.execution, r.metric, r.value, r.units, r.tool
        );
    }
    assert_eq!(rows[0].tool, "PerfTrackModel");

    // Efficiency outlook from the model.
    println!("\npredicted parallel efficiency:");
    for np in [64usize, 256, 1024, 4096] {
        println!("  np={np:<5} {:.1}%", model.efficiency(np) * 100.0);
    }
    Ok(())
}
