//! Quickstart: create a PerfTrack data store, describe a machine and an
//! application run, load performance results, and query them through the
//! GUI session model.
//!
//! Run with: `cargo run --example quickstart`

use perftrack_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Create a data store (in-memory here; `PTDataStore::open(dir)` is
    //    the durable form). The Figure 2 base resource types are loaded
    //    automatically through the type-extension interface.
    let store = PTDataStore::in_memory()?;
    println!(
        "data store initialized with {} base resource types",
        store.registry().len()
    );

    // 2. Describe the machine. Models for the paper's platforms ship in
    //    perftrack-collect; two nodes are enough for a demo.
    let frost = MachineModel::frost();
    store.load_statements(&frost.to_ptdf(2))?;
    println!("loaded machine description for {}", frost.name);

    // 3. Describe an application, an execution, and some code.
    store.load_ptdf_str(
        r#"
Application Linpack
Execution linpack-frost-001 Linpack
Resource /Linpack application
Resource /Linpack-code build
Resource /Linpack-code/linpack.c build/module
Resource /Linpack-code/linpack.c/dgefa build/module/function
Resource /Linpack-code/linpack.c/dgesl build/module/function
Resource /run-001 execution
Resource /run-001/process0 execution/process
Resource /run-001/process1 execution/process
"#,
    )?;

    // 4. Load performance results: per-process CPU time for one function,
    //    plus a whole-run wall time. The context (a set of resources) says
    //    exactly what each number covers.
    let frost_p0 = frost.processor_resource("batch", 0, 0);
    let frost_p1 = frost.processor_resource("batch", 0, 1);
    store.load_ptdf_str(&format!(
        r#"
PerfResult linpack-frost-001 "/Linpack,/Linpack-code/linpack.c/dgefa,/run-001/process0,{frost_p0}(primary)" PerfTrack "CPU time" 11.25 seconds
PerfResult linpack-frost-001 "/Linpack,/Linpack-code/linpack.c/dgefa,/run-001/process1,{frost_p1}(primary)" PerfTrack "CPU time" 12.75 seconds
PerfResult linpack-frost-001 "/Linpack,/run-001(primary)" PerfTrack "wall time" 14.1 seconds
"#
    ))?;
    println!(
        "store now holds {} resources and {} performance results",
        store.resource_count()?,
        store.result_count()?
    );

    // 5. Query through the selection dialog, exactly like the GUI (§3.2):
    //    pick the `dgefa` function; descendants are included by default.
    let mut dialog = SelectionDialog::new(&store);
    println!(
        "\nresource types available: {}...",
        dialog.resource_type_menu()[..4].join(", ")
    );
    dialog.add_name("dgefa", Relatives::Descendants);
    let counts = dialog.counts()?;
    println!(
        "live counts while building the query: family={:?} whole={}",
        counts.per_family, counts.whole
    );

    // 6. Retrieve into the main-window table, add a free-resource column,
    //    and export.
    let mut table = dialog.retrieve()?;
    table.add_resource_column("execution/process");
    println!("\ncolumns: {}", table.columns().join(" | "));
    for row in table.render()? {
        println!("  {}", row.join(" | "));
    }
    println!("\nCSV export:\n{}", table.to_csv()?);

    // 7. Plot it — category = process (column 5), series = metric.
    let chart = table.chart("dgefa CPU time per process", 5, 1)?;
    println!("{}", chart.render_ascii(72));
    Ok(())
}
