//! Case study §4.1 — A Purple Benchmark Study.
//!
//! Reproduces the paper's first case study end to end: build the IRS
//! benchmark (PTbuild capture), run it on MCR (Linux) and Frost (AIX)
//! across process counts (PTrun capture), convert the benchmark output to
//! PTdf, load everything into one PerfTrack store, navigate the data, and
//! export a dataset of interest — the min/max function time per process
//! count that becomes Figure 5.
//!
//! Run with: `cargo run --example purple_benchmark_study`

use perftrack::{Compare, QueryEngine, Series};
use perftrack_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = PTDataStore::in_memory()?;

    // --- machines: already in the store "from previous studies" ------------
    for machine in [MachineModel::mcr(), MachineModel::frost()] {
        store.load_statements(&machine.to_ptdf(4))?;
    }
    println!("machine descriptions loaded (MCR, Frost)");

    // --- PTbuild: capture the build -----------------------------------------
    let runner = perftrack_collect::simulated_irs_build();
    let build = perftrack_collect::capture_build(
        &runner,
        "irs-build-2005-06",
        "IRS",
        &["-f", "Makefile.irs"],
        &[
            ("CC".into(), "mpicc".into()),
            ("OBJECT_MODE".into(), "64".into()),
        ],
    )?;
    store.load_statements(&perftrack_collect::build_to_ptdf(&build))?;
    println!(
        "build captured on {} ({} {}): compilers {:?}, libs {:?}",
        build.build_host,
        build.os_name,
        build.os_version,
        build
            .compilers
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>(),
        build.static_libs
    );

    // --- runs: IRS at np ∈ {8,16,32,64} on both machines ---------------------
    let nps = [8usize, 16, 32, 64];
    let mut total = LoadStats::default();
    for machine in ["MCR", "Frost"] {
        let sweep = perftrack_suite::workloads::irs_scaling_sweep(2005, machine, &nps);
        for bundle in &sweep {
            // PTrun capture for the execution environment.
            let run_info =
                perftrack_collect::RunInfo::simulated(&bundle.exec_name, "IRS", bundle.np);
            store.load_statements(&perftrack_collect::run_to_ptdf(&run_info))?;
            // Convert the benchmark's own output files.
            let files: Vec<(String, String)> = bundle
                .files
                .iter()
                .map(|f| (f.name.clone(), f.content.clone()))
                .collect();
            let ctx = ExecContext::new(&bundle.exec_name, "IRS");
            let stmts = perftrack_suite::adapters::irs::convert(&ctx, &files)?;
            let stats = store.load_statements(&stmts)?;
            total.merge(&stats);
        }
    }
    println!(
        "loaded {} executions: {} resources, {} performance results ({} bytes store)",
        store.executions().len(),
        store.resource_count()?,
        store.result_count()?,
        store.size_bytes()?
    );

    // --- navigate: dominant function, per machine ----------------------------
    let engine = QueryEngine::new(&store);
    let rows = engine.run(&[
        ResourceFilter::by_name("/IRS-code/irs.c/rmatmult3").relatives(Relatives::Neither)
    ])?;
    println!(
        "\n{} results touch rmatmult3 across machines/np",
        rows.len()
    );

    // --- the Figure 5 dataset: min/max CPU time vs process count -------------
    // IRS reports max/min across processes directly; select those metrics
    // for the dominant kernel on MCR, ordered by np.
    let mut categories = Vec::new();
    let mut mins = Vec::new();
    let mut maxs = Vec::new();
    for np in nps {
        let exec = format!("irs-mcr-np{np:03}");
        let per_exec: Vec<_> = rows.iter().filter(|r| r.execution == exec).collect();
        let value_of = |metric: &str| -> Option<f64> {
            per_exec
                .iter()
                .find(|r| r.metric == metric)
                .map(|r| r.value)
        };
        if let (Some(min), Some(max)) = (value_of("CPU_time (min)"), value_of("CPU_time (max)")) {
            categories.push(format!("np={np}"));
            mins.push(min);
            maxs.push(max);
        }
    }
    let chart = perftrack::BarChart::new(
        "rmatmult3 min/max CPU time across processes (MCR)",
        categories,
        vec![
            Series {
                name: "min".into(),
                values: mins,
            },
            Series {
                name: "max".into(),
                values: maxs,
            },
        ],
        "seconds",
    );
    println!("\n{}", chart.render_ascii(76));
    println!("spreadsheet export:\n{}", chart.to_csv());

    // --- cross-machine comparison (the study's motivation) -------------------
    let compare = Compare::new(&store);
    let report = compare.compare_executions("irs-mcr-np032", "irs-frost-np032")?;
    println!(
        "MCR vs Frost at np=32: {} aligned metrics, geo-mean ratio {:.3}",
        report.rows.len(),
        report.geo_mean_ratio().unwrap_or(f64::NAN)
    );
    Ok(())
}
