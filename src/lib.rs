//! # perftrack-suite
//!
//! Facade crate tying the PerfTrack reproduction together. Downstream
//! users can depend on this single crate and reach every subsystem:
//!
//! * [`store`] — the embedded relational engine (pages, buffer pool, WAL,
//!   B+tree indexes, transactions, query operators);
//! * [`model`] — resources, type hierarchies, contexts, pr-filters;
//! * [`ptdf`] — the PerfTrack data format;
//! * [`core`] — the `PTDataStore`, query engine, GUI session model,
//!   comparison operators;
//! * [`collect`] — machine models and build/run capture;
//! * [`adapters`] — tool-output converters (IRS, SMG, mpiP, PMAPI,
//!   Paradyn, PTdfGen);
//! * [`workloads`] — deterministic synthetic datasets shaped like the
//!   paper's studies.
//!
//! The `examples/` directory walks through the paper's three case studies
//! end to end; `crates/bench` regenerates Table 1 and Figure 5.

pub use perftrack as core;
pub use perftrack_adapters as adapters;
pub use perftrack_collect as collect;
pub use perftrack_model as model;
pub use perftrack_ptdf as ptdf;
pub use perftrack_store as store;
pub use perftrack_workloads as workloads;

/// The most commonly used items across the suite.
pub mod prelude {
    pub use perftrack::{
        BarChart, Compare, LoadStats, PTDataStore, QueryEngine, ResultTable, SelectionDialog,
        Series,
    };
    pub use perftrack_adapters::ExecContext;
    pub use perftrack_collect::MachineModel;
    pub use perftrack_model::prelude::*;
    pub use perftrack_ptdf::PtdfStatement;
}
