#!/usr/bin/env bash
# Fail on dead relative links in the repo's markdown files.
#
# External targets (http/https/mailto) are skipped — CI must not depend
# on the network — as are SNIPPETS.md and PAPERS.md, whose links point
# at retrieved external material rather than the repo's own doc graph.
set -u
cd "$(dirname "$0")/.."

bad=0
while IFS= read -r file; do
  dir=$(dirname "$file")
  # Every inline markdown link target: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
      '#'*) continue ;; # in-page anchor
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "$file: dead link -> $target"
      bad=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*(\(.*\))$/\1/')
done < <(find . -name '*.md' -not -path './target/*' -not -path './.git/*' \
  -not -name SNIPPETS.md -not -name PAPERS.md)

if [ "$bad" -ne 0 ]; then
  echo "doc-link check failed" >&2
  exit 1
fi
echo "doc-link check passed"
