#!/usr/bin/env bash
# Plan-regression gate: replan the fixture queries and diff against the
# committed EXPLAIN fixtures in tests/plans/.
#
# The fixture store is built from the fixed hand-written
# tests/plans/fixture.ptdf (never `pt gen`, whose data varies with the
# RNG), so every estimate in the committed plans is an exact consequence
# of the planner logic and ANALYZE statistics alone. A cost-model or
# statistics change therefore shows up here as a reviewable fixture
# diff, not a silent plan flip in production queries.
#
# Usage: tools/check-plans.sh [--bless] [out-dir]
#   PT=path/to/pt   binary to drive (default ./target/release/pt)
#   --bless         rewrite the committed fixtures from current output
#   out-dir         where actual plans and plans.diff are written
#                   (default plan-out)
set -u
cd "$(dirname "$0")/.."

PT=${PT:-./target/release/pt}
bless=0
out=plan-out
for arg in "$@"; do
  case "$arg" in
    --bless) bless=1 ;;
    *) out="$arg" ;;
  esac
done

if [ ! -x "$PT" ]; then
  echo "check-plans: pt binary not found at $PT (set PT=...)" >&2
  exit 2
fi

mkdir -p "$out"
store=$(mktemp -d)/store
trap 'rm -rf "$(dirname "$store")"' EXIT

run() { # run <fixture-name> <pt-args...>
  local name=$1
  shift
  if ! "$PT" "$@" >"$out/$name" 2>"$out/$name.err"; then
    echo "check-plans: pt $* failed:" >&2
    cat "$out/$name.err" >&2
    exit 2
  fi
  rm -f "$out/$name.err"
}

"$PT" load "$store" tests/plans/fixture.ptdf >/dev/null

# Phase 1 — no statistics: plans must be heuristic, estimate-free, and
# still ordinary plans (stale/missing stats never error).
run 00-heuristic-name.plan explain "$store" --name a.c --relatives D

"$PT" analyze "$store" >/dev/null

# Phase 2 — fresh statistics: estimates appear and the match order is
# driven by them (the selective build-typed family is checked first).
run 10-stats-reorder.plan explain "$store" --name a.c --relatives D --type build
run 11-stats-reorder-json.plan explain "$store" --name a.c --relatives D --type build --json
run 12-stats-type.plan explain "$store" --type build/module/function
run 13-stats-via-query.plan query "$store" --name b.c --relatives B --explain

if [ "$bless" -eq 1 ]; then
  cp "$out"/*.plan tests/plans/
  echo "check-plans: blessed $(ls "$out"/*.plan | wc -l) fixtures into tests/plans/"
  exit 0
fi

bad=0
for f in tests/plans/*.plan; do
  name=$(basename "$f")
  if [ ! -f "$out/$name" ]; then
    echo "check-plans: committed fixture $name was not regenerated" >&2
    bad=1
    continue
  fi
  if ! diff -u "$f" "$out/$name" >>"$out/plans.diff"; then
    echo "check-plans: plan drift in $name" >&2
    bad=1
  fi
done
for f in "$out"/*.plan; do
  name=$(basename "$f")
  if [ ! -f "tests/plans/$name" ]; then
    echo "check-plans: new plan $name has no committed fixture" >&2
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check-plans: plans drifted from tests/plans/ — inspect $out/plans.diff;" >&2
  echo "check-plans: if the change is intentional, re-bless with tools/check-plans.sh --bless" >&2
  exit 1
fi
echo "check-plans: $(ls tests/plans/*.plan | wc -l) plans match the committed fixtures"
