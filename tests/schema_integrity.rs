//! Figure 1 verification: the PerfTrack schema exists with every table,
//! key, and index the paper's diagram shows, and referential integrity
//! holds after a full case-study load.

use perftrack::{PTDataStore, Schema};
use perftrack_adapters as adapters;
use perftrack_store::{Database, Value};
use perftrack_workloads as wl;
use std::collections::HashSet;

#[test]
fn all_figure1_tables_exist() {
    let db = Database::in_memory();
    let schema = Schema::create(&db).unwrap();
    let names: Vec<&str> = schema.all_tables().iter().map(|(n, _)| *n).collect();
    for expected in [
        "application",
        "focus_framework",
        "execution",
        "resource_item",
        "resource_attribute",
        "resource_constraint",
        "resource_has_ancestor",
        "resource_has_descendant",
        "metric",
        "performance_tool",
        "performance_result",
        "focus",
        "focus_has_resource",
    ] {
        assert!(names.contains(&expected), "missing table {expected}");
    }
}

#[test]
fn primary_key_indexes_are_unique() {
    let db = Database::in_memory();
    let schema = Schema::create(&db).unwrap();
    // Inserting duplicate primary keys must fail for id-keyed tables.
    for (table, row) in [
        (
            schema.application,
            vec![Value::Int(1), Value::Text("A".into())],
        ),
        (schema.metric, vec![Value::Int(1), Value::Text("m".into())]),
        (
            schema.performance_tool,
            vec![Value::Int(1), Value::Text("t".into())],
        ),
    ] {
        let mut txn = db.begin();
        txn.insert(table, row.clone()).unwrap();
        let mut dup = row.clone();
        dup[1] = Value::Text("other".into());
        assert!(
            txn.insert(table, dup).is_err(),
            "duplicate id accepted in a PK-indexed table"
        );
        drop(txn);
    }
}

/// Load a real study and check foreign-key-style integrity across tables.
#[test]
fn referential_integrity_after_study_load() {
    let store = PTDataStore::in_memory().unwrap();
    let bundle = &wl::smg_uv(3, 1)[0];
    let ctx = adapters::ExecContext::new(&bundle.exec_name, &bundle.application);
    store
        .load_statements(&adapters::smg::convert(&ctx, &bundle.files[0].content).unwrap())
        .unwrap();
    store
        .load_statements(&adapters::mpip::convert(&ctx, &bundle.files[1].content).unwrap())
        .unwrap();

    let db = store.db();
    let s = store.schema();
    let collect_ids = |table, col: usize| -> HashSet<i64> {
        db.scan(table)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r[col].as_int().unwrap())
            .collect()
    };
    let resource_ids = collect_ids(s.resource_item, 0);
    let result_ids = collect_ids(s.performance_result, 0);
    let focus_ids = collect_ids(s.focus, 0);
    let metric_ids = collect_ids(s.metric, 0);
    let tool_ids = collect_ids(s.performance_tool, 0);
    let exec_ids = collect_ids(s.execution, 0);
    let type_ids = collect_ids(s.focus_framework, 0);

    // resource_item.focus_framework_id → focus_framework.id
    for (_, r) in db.scan(s.resource_item).unwrap() {
        assert!(type_ids.contains(&r[3].as_int().unwrap()));
        if let Ok(pid) = r[4].as_int() {
            assert!(resource_ids.contains(&pid), "dangling parent_id");
        }
    }
    // performance_result FKs.
    for (_, r) in db.scan(s.performance_result).unwrap() {
        assert!(exec_ids.contains(&r[1].as_int().unwrap()));
        assert!(metric_ids.contains(&r[2].as_int().unwrap()));
        assert!(tool_ids.contains(&r[3].as_int().unwrap()));
    }
    // focus.result_id → performance_result.id
    for (_, r) in db.scan(s.focus).unwrap() {
        assert!(result_ids.contains(&r[1].as_int().unwrap()));
    }
    // focus_has_resource FKs.
    for (_, r) in db.scan(s.focus_has_resource).unwrap() {
        assert!(focus_ids.contains(&r[0].as_int().unwrap()));
        assert!(resource_ids.contains(&r[1].as_int().unwrap()));
    }
    // Attributes and constraints point at real resources.
    for (_, r) in db.scan(s.resource_attribute).unwrap() {
        assert!(resource_ids.contains(&r[0].as_int().unwrap()));
    }
    for (_, r) in db.scan(s.resource_constraint).unwrap() {
        assert!(resource_ids.contains(&r[0].as_int().unwrap()));
        assert!(resource_ids.contains(&r[1].as_int().unwrap()));
    }
    // Closure tables agree with recomputed transitive closure.
    let mut parent_of = std::collections::HashMap::new();
    for (_, r) in db.scan(s.resource_item).unwrap() {
        parent_of.insert(r[0].as_int().unwrap(), r[4].as_int().ok());
    }
    let mut expected_pairs = HashSet::new();
    for &id in parent_of.keys() {
        let mut cur = parent_of[&id];
        while let Some(a) = cur {
            expected_pairs.insert((id, a));
            cur = parent_of.get(&a).copied().flatten();
        }
    }
    let ancestor_pairs: HashSet<(i64, i64)> = db
        .scan(s.resource_has_ancestor)
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(ancestor_pairs, expected_pairs, "rha is the exact closure");
    let descendant_pairs: HashSet<(i64, i64)> = db
        .scan(s.resource_has_descendant)
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[1].as_int().unwrap(), r[0].as_int().unwrap()))
        .collect();
    assert_eq!(
        descendant_pairs, expected_pairs,
        "rhd is the inverse closure"
    );
}

#[test]
fn focus_types_are_valid_roles() {
    let store = PTDataStore::in_memory().unwrap();
    let bundle = &wl::smg_uv(5, 1)[0];
    let ctx = adapters::ExecContext::new(&bundle.exec_name, &bundle.application);
    store
        .load_statements(&adapters::mpip::convert(&ctx, &bundle.files[1].content).unwrap())
        .unwrap();
    let db = store.db();
    let s = store.schema();
    let mut seen = HashSet::new();
    for (_, r) in db.scan(s.focus).unwrap() {
        let role = r[2].as_text().unwrap().to_string();
        assert!(
            perftrack_model::ContextRole::parse(&role).is_some(),
            "invalid focus type {role:?}"
        );
        seen.insert(role);
    }
    assert!(seen.contains("primary"));
    assert!(seen.contains("parent"), "mpiP loads use caller sets");
}
