//! End-to-end pipeline tests: raw tool output → adapters → PTdf → data
//! store → query engine → session/comparison — the complete flow of each
//! case study, plus a combined store holding all three at once (the
//! paper's core claim: heterogeneous data in a single analysis session).

use perftrack::{Compare, PTDataStore, QueryEngine, SelectionDialog};
use perftrack_adapters::{self as adapters, ExecContext, ParadynFiles};
use perftrack_collect::MachineModel;
use perftrack_model::prelude::*;
use perftrack_workloads as wl;

fn load_irs(store: &PTDataStore, seed: u64, execs: usize) {
    for bundle in wl::irs_purple(seed, execs) {
        let files: Vec<(String, String)> = bundle
            .files
            .iter()
            .map(|f| (f.name.clone(), f.content.clone()))
            .collect();
        let ctx = ExecContext::new(&bundle.exec_name, &bundle.application);
        store
            .load_statements(&adapters::irs::convert(&ctx, &files).unwrap())
            .unwrap();
    }
}

fn load_smg(store: &PTDataStore, seed: u64, uv: usize, bgl: usize) {
    for bundle in wl::smg_uv(seed, uv) {
        let ctx = ExecContext::new(&bundle.exec_name, &bundle.application);
        store
            .load_statements(&adapters::smg::convert(&ctx, &bundle.files[0].content).unwrap())
            .unwrap();
        store
            .load_statements(&adapters::mpip::convert(&ctx, &bundle.files[1].content).unwrap())
            .unwrap();
    }
    for bundle in wl::smg_bgl(seed, bgl) {
        let ctx = ExecContext::new(&bundle.exec_name, &bundle.application);
        store
            .load_statements(&adapters::smg::convert(&ctx, &bundle.files[0].content).unwrap())
            .unwrap();
    }
}

fn load_paradyn(store: &PTDataStore, seed: u64, execs: usize) {
    for bundle in wl::paradyn_irs(seed, execs, true) {
        let files = ParadynFiles {
            resources: bundle.export.resources.content.clone(),
            index: bundle.export.index.content.clone(),
            histograms: bundle
                .export
                .histograms
                .iter()
                .map(|f| (f.name.clone(), f.content.clone()))
                .collect(),
            shg: Some(bundle.export.shg.content.clone()),
        };
        let ctx = ExecContext::new(&bundle.exec_name, "IRS");
        store
            .load_statements(&adapters::paradyn::convert(&ctx, &files).unwrap())
            .unwrap();
    }
}

#[test]
fn purple_study_pipeline() {
    let store = PTDataStore::in_memory().unwrap();
    store
        .load_statements(&MachineModel::mcr().to_ptdf(2))
        .unwrap();
    store
        .load_statements(&MachineModel::frost().to_ptdf(2))
        .unwrap();
    load_irs(&store, 1, 4);
    assert_eq!(store.executions().len(), 4);
    // Per-execution results in the paper's range.
    let per_exec = store.result_count().unwrap() / 4;
    assert!(
        (1_400..1_700).contains(&per_exec),
        "per-exec results {per_exec}"
    );
    // Navigate: all results for one function on one machine's executions.
    let engine = QueryEngine::new(&store);
    let rows = engine
        .run(&[ResourceFilter::by_name("/IRS-code/irs.c/rmatmult3").relatives(Relatives::Neither)])
        .unwrap();
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.metric.contains('(')));
}

#[test]
fn noise_study_pipeline_and_multiset_results() {
    let store = PTDataStore::in_memory().unwrap();
    store
        .load_statements(&MachineModel::uv().to_ptdf(2))
        .unwrap();
    store
        .load_statements(&MachineModel::bgl().to_ptdf(2))
        .unwrap();
    load_smg(&store, 2, 2, 3);
    assert_eq!(store.executions().len(), 5);
    // BG/L executions contribute exactly 8 results each.
    let engine = QueryEngine::new(&store);
    let all = engine.run(&[]).unwrap();
    for i in 0..3 {
        let exec = format!("smg-bgl-{i:04}");
        assert_eq!(
            all.iter().filter(|r| r.execution == exec).count(),
            8,
            "{exec}"
        );
    }
    // Caller/callee: querying by a build-hierarchy caller reaches mpiP
    // results whose primary context is an MPI function.
    let rows = engine
        .run(&[ResourceFilter::by_name("/SMG2000-code")])
        .unwrap();
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.tool == "mpiP"));
}

#[test]
fn paradyn_study_pipeline() {
    let store = PTDataStore::in_memory().unwrap();
    load_paradyn(&store, 3, 3);
    assert_eq!(store.executions().len(), 3);
    assert!(store.registry().contains("syncObject"));
    // nan bins were skipped: result counts differ across executions.
    let engine = QueryEngine::new(&store);
    let all = engine.run(&[]).unwrap();
    let mut counts = std::collections::BTreeMap::new();
    for r in &all {
        *counts.entry(r.execution.clone()).or_insert(0usize) += 1;
    }
    assert_eq!(counts.len(), 3);
    let distinct: std::collections::BTreeSet<_> = counts.values().collect();
    assert!(distinct.len() > 1, "counts vary: {counts:?}");
}

#[test]
fn combined_store_single_analysis_session() {
    // The paper's central claim: data from different tools, formats, and
    // machines analyzed in ONE session.
    let store = PTDataStore::in_memory().unwrap();
    for m in [
        MachineModel::mcr(),
        MachineModel::frost(),
        MachineModel::uv(),
        MachineModel::bgl(),
    ] {
        store.load_statements(&m.to_ptdf(2)).unwrap();
    }
    load_irs(&store, 10, 2);
    load_smg(&store, 10, 1, 1);
    load_paradyn(&store, 10, 1);
    let engine = QueryEngine::new(&store);
    let all = engine.run(&[]).unwrap();
    let tools: std::collections::BTreeSet<_> = all.iter().map(|r| r.tool.as_str()).collect();
    assert!(tools.contains("IRS"));
    assert!(tools.contains("SMG2000"));
    assert!(tools.contains("PMAPI"));
    assert!(tools.contains("mpiP"));
    assert!(tools.contains("Paradyn"));
    // Cross-tool query: every result for the execution/process type.
    let dialog = SelectionDialog::new(&store);
    let menu = dialog.resource_type_menu();
    assert!(
        menu.contains(&"syncObject".to_string()),
        "extended types visible"
    );
    // Export the combined store and reload it elsewhere — granularity of
    // exchange is statements, not opaque files.
    let exported = store.export_ptdf().unwrap();
    let store2 = PTDataStore::in_memory().unwrap();
    store2.load_statements(&exported).unwrap();
    assert_eq!(
        store.result_count().unwrap(),
        store2.result_count().unwrap()
    );
    assert_eq!(
        store.resource_count().unwrap(),
        store2.resource_count().unwrap()
    );
}

#[test]
fn ptdfgen_batch_conversion_roundtrip() {
    // The §3.3 PTdfGen flow: one directory, one index file, full convert.
    let mut files: Vec<(String, String)> = Vec::new();
    for bundle in wl::irs_purple(4, 2) {
        for f in &bundle.files {
            files.push((f.name.clone(), f.content.clone()));
        }
    }
    let entries: Vec<adapters::IndexEntry> = wl::irs_purple(4, 2)
        .iter()
        .map(|b| adapters::IndexEntry {
            execution: b.exec_name.clone(),
            application: b.application.clone(),
            concurrency: "MPI".into(),
            processes: b.np,
            threads: 1,
            build_timestamp: "2005-05-01T00:00:00".into(),
            run_timestamp: "2005-05-02T00:00:00".into(),
        })
        .collect();
    let index = adapters::write_index(&entries);
    let converted = adapters::generate_all(&index, &files).unwrap();
    assert_eq!(converted.len(), 2);
    let store = PTDataStore::in_memory().unwrap();
    for (_, stmts) in &converted {
        store.load_statements(stmts).unwrap();
    }
    assert_eq!(store.executions().len(), 2);
    assert!(store.result_count().unwrap() > 2_000);
}

#[test]
fn cross_platform_comparison_after_combined_load() {
    let store = PTDataStore::in_memory().unwrap();
    load_irs(&store, 8, 4); // alternates MCR / Frost
    let compare = Compare::new(&store);
    let execs = store.executions();
    let (a, b) = (&execs[0].1, &execs[1].1);
    let report = compare.compare_executions(a, b).unwrap();
    assert!(report.rows.len() > 500, "rich alignment across machines");
    assert!(report.geo_mean_ratio().is_some());
}

#[test]
fn build_and_run_capture_integrate() {
    let store = PTDataStore::in_memory().unwrap();
    let runner = perftrack_collect::simulated_irs_build();
    let build = perftrack_collect::capture_build(
        &runner,
        "b1",
        "IRS",
        &["-f", "Makefile.irs"],
        &[("PATH".into(), "/usr/bin".into())],
    )
    .unwrap();
    store
        .load_statements(&perftrack_collect::build_to_ptdf(&build))
        .unwrap();
    let run = perftrack_collect::RunInfo::simulated("e1", "IRS", 4);
    store
        .load_statements(&perftrack_collect::run_to_ptdf(&run))
        .unwrap();
    // Both hierarchies exist in one store, tied to the same application.
    assert!(store.resource_id("/b1").is_some());
    assert!(store.resource_id("/e1-env/libmpi.so").is_some());
    assert!(store.resource_id("/zrad.4").is_some());
    let engine = QueryEngine::new(&store);
    let fam = engine
        .family(&ResourceFilter::by_type(
            TypePath::new("inputDeck").unwrap(),
        ))
        .unwrap();
    assert_eq!(fam.len(), 1);
}
