//! Concurrency and durability at the PerfTrack level: parallel PTdf
//! loading, concurrent readers during a bulk load, reopen-after-close, and
//! crash recovery of a partially loaded study.

use perftrack::{PTDataStore, QueryEngine};
use perftrack_adapters::{self as adapters, ExecContext};
use perftrack_model::prelude::*;
use perftrack_ptdf::to_string as ptdf_to_string;
use perftrack_workloads as wl;
use std::sync::Arc;

fn irs_ptdf_texts(seed: u64, execs: usize) -> Vec<String> {
    wl::irs_purple(seed, execs)
        .iter()
        .map(|bundle| {
            let files: Vec<(String, String)> = bundle
                .files
                .iter()
                .map(|f| (f.name.clone(), f.content.clone()))
                .collect();
            let ctx = ExecContext::new(&bundle.exec_name, &bundle.application);
            ptdf_to_string(&adapters::irs::convert(&ctx, &files).unwrap())
        })
        .collect()
}

#[test]
fn parallel_load_equals_serial_load() {
    let texts = irs_ptdf_texts(21, 6);
    let serial = PTDataStore::in_memory().unwrap();
    for t in &texts {
        serial.load_ptdf_str(t).unwrap();
    }
    let parallel = PTDataStore::in_memory().unwrap();
    let stats = parallel.load_ptdf_texts_parallel(&texts, 4).unwrap();
    assert_eq!(stats.results, serial.result_count().unwrap());
    assert_eq!(
        serial.result_count().unwrap(),
        parallel.result_count().unwrap()
    );
    assert_eq!(
        serial.resource_count().unwrap(),
        parallel.resource_count().unwrap()
    );
    assert_eq!(serial.metrics(), parallel.metrics());
    // Same query answers.
    let q = |s: &PTDataStore| {
        QueryEngine::new(s)
            .run(&[
                ResourceFilter::by_name("/IRS-code/irs.c/rmatmult3").relatives(Relatives::Neither)
            ])
            .unwrap()
            .len()
    };
    assert_eq!(q(&serial), q(&parallel));
}

#[test]
fn readers_run_during_bulk_load() {
    let store = Arc::new(PTDataStore::in_memory().unwrap());
    // Seed one execution so readers always have data.
    let texts = irs_ptdf_texts(31, 3);
    store.load_ptdf_str(&texts[0]).unwrap();
    let baseline = store.result_count().unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut iterations = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let n = store.result_count().unwrap();
                    assert!(n >= baseline, "loaded results never disappear");
                    let engine = QueryEngine::new(&store);
                    // Queries stay well-formed mid-load; counts only grow,
                    // so any answer is at most the *current* total.
                    let rows = engine
                        .run(&[ResourceFilter::by_name("/IRS").relatives(Relatives::Neither)])
                        .unwrap();
                    assert!(rows.len() <= store.result_count().unwrap() + rows.len());
                    iterations += 1;
                }
                iterations
            })
        })
        .collect();
    for t in &texts[1..] {
        store.load_ptdf_str(t).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers made progress");
    }
    assert_eq!(store.executions().len(), 3);
}

#[test]
fn durable_store_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("pt-e2e-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let texts = irs_ptdf_texts(41, 2);
    let (results, resources);
    {
        let store = PTDataStore::open(&dir).unwrap();
        for t in &texts {
            store.load_ptdf_str(t).unwrap();
        }
        results = store.result_count().unwrap();
        resources = store.resource_count().unwrap();
    }
    let store = PTDataStore::open(&dir).unwrap();
    assert_eq!(store.result_count().unwrap(), results);
    assert_eq!(store.resource_count().unwrap(), resources);
    // Queries work identically after reopen.
    let engine = QueryEngine::new(&store);
    let rows = engine
        .run(&[ResourceFilter::by_name("rmatmult3").relatives(Relatives::Neither)])
        .unwrap();
    assert!(!rows.is_empty());
    // And new loads continue cleanly (renamed so the execution is new).
    let more = irs_ptdf_texts(42, 1)[0].replace("irs-mcr-0000", "irs-mcr-1000");
    store.load_ptdf_str(&more).unwrap();
    assert_eq!(store.executions().len(), 3);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_between_loads_preserves_committed_studies() {
    let dir = std::env::temp_dir().join(format!("pt-e2e-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let texts = irs_ptdf_texts(51, 2);
    let committed;
    {
        let store = PTDataStore::open(&dir).unwrap();
        store.load_ptdf_str(&texts[0]).unwrap();
        committed = store.result_count().unwrap();
        // Second load starts but "crashes" before commit: simulate by
        // building a loader, applying statements, and leaking everything.
        let stmts = perftrack_ptdf::parse_str(&texts[1]).unwrap();
        let mut loader = store.begin_load();
        for s in stmts.iter().take(500) {
            loader.apply(s).unwrap();
        }
        std::mem::forget(loader);
        std::mem::forget(store);
    }
    let store = PTDataStore::open(&dir).unwrap();
    assert_eq!(
        store.result_count().unwrap(),
        committed,
        "only the committed study survives the crash"
    );
    assert_eq!(store.executions().len(), 1);
    // The store is fully usable: reload the second study properly.
    store.load_ptdf_str(&texts[1]).unwrap();
    assert_eq!(store.executions().len(), 2);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_bounds_growth_and_preserves_data() {
    let dir = std::env::temp_dir().join(format!("pt-e2e-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PTDataStore::open(&dir).unwrap();
    let texts = irs_ptdf_texts(61, 2);
    store.load_ptdf_str(&texts[0]).unwrap();
    store.checkpoint().unwrap();
    let wal = dir.join("wal.log");
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), 0, "WAL truncated");
    store.load_ptdf_str(&texts[1]).unwrap();
    assert!(
        std::fs::metadata(&wal).unwrap().len() > 0,
        "WAL grows again"
    );
    assert_eq!(store.executions().len(), 2);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}
