//! Crash-safe resumable bulk loading, end to end: a PTdf load driven
//! against a [`FaultVfs`] is killed at a sweep of deterministic
//! operation indices; after each simulated crash the store is reopened
//! (recovery) and the load re-run with `resume: true`. The final store
//! must hold exactly the same row counts as an uninterrupted baseline
//! load and pass deep fsck — kill + resume is indistinguishable from
//! never having crashed.

use perftrack::{BulkLoadOptions, PTDataStore};
use perftrack_store::vfs::{FaultKind, FaultRule, FaultTrigger, FaultVfs, MemVfs, Vfs};
use perftrack_store::DbOptions;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A synthetic PTdf document: one application, `execs` executions, each
/// with `results` per-process performance results (the same statement
/// shapes as the paper's IRS example).
fn make_ptdf(app: &str, execs: usize, results: usize) -> String {
    let mut s = format!("Application {app}\n");
    for e in 0..execs {
        s.push_str(&format!("Execution {app}-e{e} {app}\n"));
        s.push_str(&format!("Resource /{app}-run{e} execution {app}-e{e}\n"));
        for r in 0..results {
            s.push_str(&format!("Resource /{app}-run{e}/p{r} execution/process\n"));
            s.push_str(&format!(
                "PerfResult {app}-e{e} /{app}-run{e}/p{r}(primary) {app} \"CPU time\" {}.5 seconds\n",
                r + 1
            ));
        }
    }
    s
}

fn write_inputs(dir: &PathBuf) -> Vec<PathBuf> {
    let a = dir.join("alpha.ptdf");
    let b = dir.join("beta.ptdf");
    std::fs::write(&a, make_ptdf("alpha", 2, 25)).unwrap();
    std::fs::write(&b, make_ptdf("beta", 3, 20)).unwrap();
    vec![a, b]
}

struct Counts {
    results: usize,
    resources: usize,
    executions: usize,
}

fn counts(store: &PTDataStore) -> Counts {
    Counts {
        results: store.result_count().unwrap(),
        resources: store.resource_count().unwrap(),
        executions: store.db().row_count(store.schema().execution).unwrap(),
    }
}

#[test]
fn kill_and_resume_equals_uninterrupted_load() {
    let input_dir = tmpdir("inputs");
    let paths = write_inputs(&input_dir);
    let opts = BulkLoadOptions {
        batch_statements: 10,
        resume: true,
    };

    // Baseline: the same files loaded with no faults at all.
    let baseline = {
        let store = PTDataStore::in_memory().unwrap();
        store.load_ptdf_files_resumable(&paths, &opts).unwrap();
        counts(&store)
    };

    // Crash sweep: kill the process (fsync-gate semantics — unsynced
    // data is lost) at a deterministic ladder of VFS operation indices,
    // reopening + resuming after every kill. The ladder is coarse enough
    // to terminate quickly and fine enough to land inside recovery,
    // mid-batch, and between batches.
    let store_dir = tmpdir("store");
    let inner: Arc<MemVfs> = Arc::new(MemVfs::new());
    let mut crash_at: u64 = 3;
    let mut crashes = 0u32;
    let mut rounds = 0u32;
    let mut last_err = String::new();
    loop {
        rounds += 1;
        assert!(
            rounds < 500,
            "crash sweep failed to converge (crash_at {crash_at}, last error: {last_err})"
        );
        // A fresh FaultVfs over the same inner MemVfs is a process
        // restart: the image is rebuilt from whatever was synced.
        let fault = FaultVfs::new(Arc::clone(&inner) as Arc<dyn Vfs>);
        fault.arm(FaultRule {
            trigger: FaultTrigger::OpIndex(crash_at),
            kind: FaultKind::Crash,
            once: true,
        });
        let outcome = PTDataStore::open_with_vfs(&store_dir, DbOptions::default(), &fault)
            .and_then(|store| store.load_ptdf_files_resumable(&paths, &opts));
        match outcome {
            Ok(_) if !fault.crashed() => break,
            // The load "finished" but the crash fired during teardown
            // syncs, or it died mid-flight: either way, restart later.
            // The ladder grows geometrically: dense kills early (inside
            // recovery and the first batches), sparser once each round
            // must redo the whole open just to reach new territory.
            outcome => {
                if let Err(e) = outcome {
                    last_err = e.to_string();
                }
                crashes += 1;
                crash_at = crash_at.saturating_add(3 + crash_at / 3);
            }
        }
    }
    assert!(
        crashes > 3,
        "sweep must actually kill a few runs (got {crashes})"
    );

    // Reopen clean (no faults) and compare against the baseline.
    let store =
        PTDataStore::open_with_vfs(&store_dir, DbOptions::default(), inner.as_ref()).unwrap();
    let fin = counts(&store);
    assert_eq!(fin.results, baseline.results, "results after kill+resume");
    assert_eq!(
        fin.resources, baseline.resources,
        "resources after kill+resume"
    );
    assert_eq!(
        fin.executions, baseline.executions,
        "executions after kill+resume"
    );

    // Every input is marked done in the manifest at its full watermark.
    let manifest = store.manifest().unwrap();
    assert_eq!(manifest.len(), paths.len());
    assert!(
        manifest.iter().all(|m| m.done),
        "all files done: {manifest:?}"
    );

    // And the store is structurally sound.
    let report = store.fsck(true).unwrap();
    assert_eq!(report.error_count(), 0, "deep fsck: {}", report.summary());

    // Idempotence: one more resume pass is a no-op.
    let rerun = store.load_ptdf_files_resumable(&paths, &opts).unwrap();
    assert_eq!(rerun.files_skipped, paths.len());
    assert_eq!(rerun.stats.results, 0);
    assert_eq!(store.result_count().unwrap(), baseline.results);

    drop(store);
    let _ = std::fs::remove_dir_all(&input_dir);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn resume_without_faults_skips_completed_work() {
    let input_dir = tmpdir("plain");
    let paths = write_inputs(&input_dir);
    let store = PTDataStore::in_memory().unwrap();
    let opts = BulkLoadOptions {
        batch_statements: 16,
        resume: true,
    };
    let first = store.load_ptdf_files_resumable(&paths, &opts).unwrap();
    assert_eq!(first.files_loaded, 2);
    assert!(first.batches_committed > 2, "bounded batches were used");
    let second = store.load_ptdf_files_resumable(&paths, &opts).unwrap();
    assert_eq!(second.files_skipped, 2);
    assert_eq!(second.stats.statements, 0);
    let _ = std::fs::remove_dir_all(&input_dir);
}
