//! Figure 3 / Figure 4 behaviours: the selection dialog and main-window
//! model must reproduce every interaction the paper describes for the
//! GUI — type menus, incremental child expansion with scope restriction,
//! attribute viewers, live match counts, D/A/B/N relatives editing, the
//! two-step free-resource column selection, sorting, filtering, chart
//! plotting, and CSV export/import round-trips.

use perftrack::{PTDataStore, SelectionDialog};
use perftrack_adapters::{self as adapters, ExecContext};
use perftrack_collect::MachineModel;
use perftrack_model::prelude::*;
use perftrack_workloads as wl;

fn study_store() -> PTDataStore {
    let store = PTDataStore::in_memory().unwrap();
    store
        .load_statements(&MachineModel::frost().to_ptdf(2))
        .unwrap();
    store
        .load_statements(&MachineModel::mcr().to_ptdf(2))
        .unwrap();
    for bundle in wl::irs_purple(17, 2) {
        let files: Vec<(String, String)> = bundle
            .files
            .iter()
            .map(|f| (f.name.clone(), f.content.clone()))
            .collect();
        let ctx = ExecContext::new(&bundle.exec_name, &bundle.application);
        store
            .load_statements(&adapters::irs::convert(&ctx, &files).unwrap())
            .unwrap();
    }
    store
}

#[test]
fn fig3_type_menu_and_name_lists() {
    let store = study_store();
    let dialog = SelectionDialog::new(&store);
    let menu = dialog.resource_type_menu();
    // Base types plus hierarchies appear.
    for t in [
        "application",
        "grid/machine",
        "build/module/function",
        "metric",
    ] {
        assert!(menu.contains(&t.to_string()), "{t} missing from menu");
    }
    // Selecting a type lists names with counts; "batch" spans machines.
    let names = dialog.names_for_type("grid/machine/partition").unwrap();
    let batch = names.iter().find(|(n, _)| n == "batch").unwrap();
    assert_eq!(batch.1, 2, "batch exists on both machines");
    // Function names from the IRS load appear under the function type.
    let funcs = dialog.names_for_type("build/module/function").unwrap();
    assert!(funcs.iter().any(|(n, _)| n == "rmatmult3"));
}

#[test]
fn fig3_child_expansion_restricts_scope() {
    // "Choosing a resource name as a child of another resource name
    // restricts the subset" — the Frost/batch example from the paper.
    let store = study_store();
    let dialog = SelectionDialog::new(&store);
    let top = dialog.children_of_name("batch").unwrap();
    let frost_only = dialog.children_of_name("Frost/batch").unwrap();
    // Top-level expansion covers nodes on both machines; the restricted
    // one covers only Frost's.
    let top_total: usize = top.iter().map(|(_, c)| c).sum();
    let frost_total: usize = frost_only.iter().map(|(_, c)| c).sum();
    assert!(top_total > frost_total);
    assert!(frost_only
        .iter()
        .all(|(n, _)| n.starts_with("Frost/batch/")));
}

#[test]
fn fig3_attribute_viewer_multi_resource() {
    let store = study_store();
    let dialog = SelectionDialog::new(&store);
    // "p0" refers to processors on both machines; the viewer lists each
    // resource's attributes separately.
    let rows = dialog.attribute_viewer("p0").unwrap();
    let machines: std::collections::BTreeSet<&str> = rows
        .iter()
        .map(|(name, _, _)| {
            if name.contains("Frost") {
                "Frost"
            } else {
                "MCR"
            }
        })
        .collect();
    assert_eq!(machines.len(), 2);
    assert!(rows.iter().any(|(_, a, v)| a == "vendor" && v == "IBM"));
    assert!(rows.iter().any(|(_, a, v)| a == "vendor" && v == "Intel"));
}

#[test]
fn fig3_live_counts_and_relatives_editing() {
    let store = study_store();
    let mut dialog = SelectionDialog::new(&store);
    dialog.add_name("rmatmult3", Relatives::Descendants);
    let one = dialog.counts().unwrap();
    assert!(one.whole > 0);
    // Add a machine restriction that matches nothing at first (machines
    // aren't in IRS contexts), then widen via the relatives flag — the
    // tailoring loop the live counts exist for.
    dialog.add_name("MCR", Relatives::Neither);
    assert_eq!(dialog.counts().unwrap().whole, 0);
    dialog.set_relatives(1, Relatives::Descendants).unwrap();
    // Still zero: processor resources aren't in IRS timing contexts
    // either. Remove the family.
    dialog.remove(1);
    assert_eq!(dialog.counts().unwrap().whole, one.whole);
    // Relatives code is reflected in the label.
    assert!(dialog.selected()[0].label.ends_with("[D]"));
}

#[test]
fn fig4_two_step_columns_sort_filter_export() {
    let store = study_store();
    let mut dialog = SelectionDialog::new(&store);
    dialog.add_name("rmatmult3", Relatives::Neither);
    let mut table = dialog.retrieve().unwrap();
    let n = table.len();
    assert!(n > 0);

    // Step 2: the addable columns list only types whose values vary.
    let addable = table.addable_columns().unwrap();
    assert!(
        addable.iter().any(|c| c.type_path == "execution"),
        "execution runs vary across rows: {addable:?}"
    );
    table.add_resource_column("execution");
    assert!(table.columns().contains(&"execution".to_string()));

    // Sort by value descending; verify order.
    table.sort_by(2, false).unwrap();
    let rendered = table.render().unwrap();
    let vals: Vec<f64> = rendered.iter().map(|r| r[2].parse().unwrap()).collect();
    assert!(
        vals.windows(2).all(|w| w[0] >= w[1]),
        "descending: {vals:?}"
    );

    // Filter by metric, then clear.
    table.filter_metric("CPU_time (max)");
    assert!(table.len() < n);
    assert!(table
        .render()
        .unwrap()
        .iter()
        .all(|r| r[1] == "CPU_time (max)"));
    table.clear_filters();
    assert_eq!(table.len(), n);

    // CSV export: header + row per visible result; parseable back.
    let csv = table.to_csv().unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), n + 1);
    assert!(lines[0].starts_with("execution,metric,value,units,tool"));

    // Chart the table (Figure 5's pathway): category=execution col,
    // series=metric col.
    let exec_col = table
        .columns()
        .iter()
        .position(|c| c == "execution")
        .unwrap();
    let chart = table.chart("per-exec", exec_col, 1).unwrap();
    assert_eq!(chart.categories.len(), 2, "two executions loaded");
    assert!(!chart.series.is_empty());
    let svg = chart.to_svg(640, 400);
    assert!(svg.contains("</svg>"));
}

#[test]
fn machine_level_only_queries_via_bare_type() {
    // "Users can also add a resource type to the query list without
    // specifying a name ... to get only machine-level measurements."
    let store = study_store();
    // Add one machine-level result so the distinction is observable.
    store
        .load_ptdf_str(
            "Application IRS\nExecution probe IRS\nPerfResult probe /MCRGrid/MCR(primary) Probe \"machine check\" 1.0 ok\n",
        )
        .unwrap();
    let mut dialog = SelectionDialog::new(&store);
    dialog.add_type(&TypePath::new("grid/machine").unwrap());
    let table = dialog.retrieve().unwrap();
    assert_eq!(table.len(), 1);
    assert_eq!(table.rows()[0].metric, "machine check");
}
