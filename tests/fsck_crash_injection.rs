//! Crash injection against the WAL, gated by the integrity verifier:
//! take a store that "crashed" with a dirty log, then truncate or
//! bit-flip the log at and around every record boundary. Every mutation
//! must lead to one of exactly two outcomes — recovery succeeds and a
//! deep fsck reports zero errors, or the open fails with a clean error.
//! Never a panic, never a silently inconsistent store.

use perftrack::PTDataStore;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-fsckcrash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const DOC: &str = "\
Application A
Execution e1 A
Resource /m grid
Resource /m/n0 grid/machine
Resource /r application
PerfResult e1 /r(primary) T m 1.5 u
PerfResult e1 /m/n0(primary) T m2 2.5 u
";

/// Build a store directory whose WAL still holds live records, as after
/// a crash: load, checkpoint, load again, then forget without dropping.
fn crashed_fixture(dir: &Path) {
    let store = PTDataStore::open(dir).unwrap();
    store.load_ptdf_str(DOC).unwrap();
    store.checkpoint().unwrap();
    store
        .load_ptdf_str("Execution e2 A\nPerfResult e2 /r(primary) T m 9.5 u\n")
        .unwrap();
    std::mem::forget(store);
}

/// Parse the WAL framing (`len u32 | crc u32 | body`) into the byte
/// offsets where each record starts, plus the end offset.
fn record_boundaries(wal: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut pos = 0usize;
    while pos + 8 <= wal.len() {
        let len = u32::from_be_bytes([wal[pos], wal[pos + 1], wal[pos + 2], wal[pos + 3]]) as usize;
        if pos + 8 + len > wal.len() {
            break;
        }
        pos += 8 + len;
        offsets.push(pos);
    }
    offsets
}

/// Restore a pristine copy of the fixture into `trial`, with `wal` as
/// the (possibly mutated) log contents.
fn restore(pristine: &Path, trial: &Path, wal: &[u8]) {
    let _ = std::fs::remove_dir_all(trial);
    std::fs::create_dir_all(trial).unwrap();
    for entry in std::fs::read_dir(pristine).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), trial.join(entry.file_name())).unwrap();
    }
    std::fs::write(trial.join("wal.log"), wal).unwrap();
}

/// Open the mutated store. Success must come with a clean deep fsck;
/// failure must be a clean error. Returns a label for the outcome.
fn open_and_verify(trial: &Path, what: &str) -> &'static str {
    match PTDataStore::open(trial) {
        Ok(store) => {
            let report = store.fsck(true).unwrap();
            assert_eq!(
                report.error_count(),
                0,
                "{what}: recovered store fails fsck: {}",
                report.summary()
            );
            "recovered"
        }
        Err(e) => {
            assert!(!e.to_string().is_empty(), "{what}: empty error");
            "rejected"
        }
    }
}

#[test]
fn wal_truncation_at_every_boundary_recovers_or_rejects_cleanly() {
    let pristine = tmpdir("trunc-pristine");
    crashed_fixture(&pristine);
    let wal = std::fs::read(pristine.join("wal.log")).unwrap();
    assert!(!wal.is_empty(), "fixture must carry a dirty WAL");
    let bounds = record_boundaries(&wal);
    assert!(bounds.len() > 2, "fixture must carry several records");

    let trial = tmpdir("trunc-trial");
    let mut recovered = 0usize;
    // Cut exactly at each record boundary, and ragged cuts just past it
    // (mid-header and mid-body) — a torn tail in three flavours.
    let mut cuts: Vec<usize> = Vec::new();
    for &b in &bounds {
        cuts.push(b);
        cuts.push((b + 3).min(wal.len()));
        cuts.push((b + 11).min(wal.len()));
    }
    cuts.sort_unstable();
    cuts.dedup();
    // Keep the run bounded: sample evenly up to 30 cuts.
    let step = (cuts.len() / 30).max(1);
    for cut in cuts.iter().step_by(step) {
        restore(&pristine, &trial, &wal[..*cut]);
        if open_and_verify(&trial, &format!("truncate at {cut}")) == "recovered" {
            recovered += 1;
        }
    }
    assert!(recovered > 0, "no truncation point recovered at all");
    std::fs::remove_dir_all(&pristine).ok();
    std::fs::remove_dir_all(&trial).ok();
}

#[test]
fn wal_bitflips_at_record_boundaries_recover_or_reject_cleanly() {
    let pristine = tmpdir("flip-pristine");
    crashed_fixture(&pristine);
    let wal = std::fs::read(pristine.join("wal.log")).unwrap();
    let bounds = record_boundaries(&wal);
    assert!(bounds.len() > 2);

    let trial = tmpdir("flip-trial");
    // Flip a bit in the length word, the checksum, and the body of each
    // record (sampled to keep the run bounded).
    let mut targets: Vec<usize> = Vec::new();
    for &b in &bounds {
        for delta in [0usize, 5, 9] {
            if b + delta < wal.len() {
                targets.push(b + delta);
            }
        }
    }
    targets.sort_unstable();
    targets.dedup();
    let step = (targets.len() / 30).max(1);
    for byte in targets.iter().step_by(step) {
        let mut mutated = wal.clone();
        mutated[*byte] ^= 0x40;
        restore(&pristine, &trial, &mutated);
        open_and_verify(&trial, &format!("bit-flip at byte {byte}"));
    }

    // Control: the unmutated fixture recovers and passes a deep fsck.
    restore(&pristine, &trial, &wal);
    assert_eq!(open_and_verify(&trial, "control"), "recovered");
    std::fs::remove_dir_all(&pristine).ok();
    std::fs::remove_dir_all(&trial).ok();
}
