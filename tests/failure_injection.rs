//! Failure injection at the system level: corrupted store files, torn
//! logs, malformed inputs mid-load, and conflicting data must surface as
//! errors (never panics) and must not corrupt previously committed data.

use perftrack::PTDataStore;
use perftrack_model::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-fail-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const GOOD: &str = "\
Application A
Execution e1 A
Resource /r application
PerfResult e1 /r(primary) T m 1.5 u
";

#[test]
fn corrupt_catalog_is_detected_on_open() {
    let dir = tmpdir("catalog");
    {
        let store = PTDataStore::open(&dir).unwrap();
        store.load_ptdf_str(GOOD).unwrap();
    }
    // Flip bytes in the middle of the catalog.
    let path = dir.join("catalog.meta");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let err = PTDataStore::open(&dir).err().expect("corruption detected");
    assert!(err.to_string().contains("corruption") || err.to_string().contains("checksum"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ragged_page_file_is_detected_on_open() {
    let dir = tmpdir("pages");
    {
        let store = PTDataStore::open(&dir).unwrap();
        store.load_ptdf_str(GOOD).unwrap();
    }
    // Truncate the page file to a non-page-multiple length.
    let path = dir.join("pages.db");
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 100).unwrap();
    drop(f);
    assert!(PTDataStore::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_wal_tail_is_ignored_cleanly() {
    let dir = tmpdir("wal");
    {
        let store = PTDataStore::open(&dir).unwrap();
        store.load_ptdf_str(GOOD).unwrap();
        store.checkpoint().unwrap();
        // Append garbage to the (now empty) WAL, simulating a torn write.
        std::mem::forget(store);
    }
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02]);
    std::fs::write(&wal, &bytes).unwrap();
    let store = PTDataStore::open(&dir).unwrap();
    assert_eq!(store.result_count().unwrap(), 1, "committed data intact");
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_document_error_rolls_back_whole_load() {
    let store = PTDataStore::in_memory().unwrap();
    store.load_ptdf_str(GOOD).unwrap();
    let before = store.result_count().unwrap();
    // A document whose 4th statement references a missing resource: the
    // whole document must roll back (load is transactional).
    let bad = "\
Application B
Execution e2 B
PerfResult e2 /r(primary) T m 2.0 u
PerfResult e2 /ghost(primary) T m 3.0 u
";
    assert!(store.load_ptdf_str(bad).is_err());
    assert_eq!(store.result_count().unwrap(), before, "no partial load");
    assert!(
        store.execution_id("e2").is_none(),
        "rolled-back execution not visible"
    );
    // The store remains usable.
    store
        .load_ptdf_str("Application B\nExecution e2 B\nPerfResult e2 /r(primary) T m 2.0 u\n")
        .unwrap();
    assert_eq!(store.result_count().unwrap(), before + 1);
}

#[test]
fn syntax_error_reports_line_and_loads_nothing() {
    let store = PTDataStore::in_memory().unwrap();
    let doc = "Application A\nNotAStatement x y\n";
    let err = store.load_ptdf_str(doc).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
    assert_eq!(store.db().row_count(store.schema().application).unwrap(), 0);
}

#[test]
fn conflicting_resource_type_rejected_without_damage() {
    let store = PTDataStore::in_memory().unwrap();
    store.load_ptdf_str(GOOD).unwrap();
    // /r exists as an application; redefining it as a grid must fail.
    let err = store.load_ptdf_str("Resource /r grid\n").unwrap_err();
    assert!(err.to_string().contains("type"), "{err}");
    // Original type intact.
    let rec = store.resource_by_name("/r").unwrap().unwrap();
    let types = perftrack::QueryEngine::new(&store)
        .type_path_by_id()
        .unwrap();
    assert_eq!(types[&rec.type_id], "application");
}

#[test]
fn queries_on_unknown_entities_error_not_panic() {
    let store = PTDataStore::in_memory().unwrap();
    store.load_ptdf_str(GOOD).unwrap();
    let engine = perftrack::QueryEngine::new(&store);
    // Unknown type in a filter.
    let err = engine
        .family(&ResourceFilter::by_type(TypePath::new("no/such").unwrap()))
        .unwrap_err();
    assert!(err.to_string().contains("not found"));
    // Unknown column type path.
    assert!(engine.column_values(&[], "mystery").is_err());
    // Compare with a missing execution yields empty alignment, not a
    // crash.
    let cmp = perftrack::Compare::new(&store);
    let report = cmp.compare_executions("e1", "missing").unwrap();
    assert!(report.rows.is_empty());
    assert_eq!(report.only_in_a, 1);
}

#[test]
fn adapter_rejects_binary_garbage() {
    use perftrack_adapters::{irs, mpip, smg, ExecContext};
    let ctx = ExecContext::new("e", "A");
    let junk = "\u{0}\u{1}\u{2}binary-ish garbage\nnot a real format\n";
    assert!(smg::convert(&ctx, junk).is_err());
    assert!(mpip::convert(&ctx, junk).is_err());
    assert!(irs::convert(&ctx, &[("x.timing.dat".into(), junk.into())]).is_err());
}

#[test]
fn oversized_row_rejected_cleanly() {
    // A resource attribute value bigger than a page cannot be stored; the
    // load errors and rolls back.
    let store = PTDataStore::in_memory().unwrap();
    let huge = "x".repeat(9000);
    let doc = format!("Resource /r application\nResourceAttribute /r big {huge} string\n");
    assert!(store.load_ptdf_str(&doc).is_err());
    assert_eq!(store.resource_count().unwrap(), 0, "rolled back");
    // Reasonable sizes still work afterwards.
    store.load_ptdf_str(GOOD).unwrap();
}
