//! The in-memory model (`perftrack-model`) is the reference semantics;
//! the DB-backed query engine must agree with it. These tests build the
//! same randomized world in both, then cross-check families, pr-filter
//! matching, and match counts — including a proptest sweep.

use perftrack::{PTDataStore, QueryEngine};
use perftrack_model::prelude::*;
use proptest::prelude::*;

/// A world description both sides can construct.
#[derive(Debug, Clone)]
struct World {
    machines: usize,
    nodes: usize,
    procs: usize,
    results_per_proc: usize,
}

fn build_model(w: &World) -> (TypeRegistry, ResourceRepo, Vec<PerformanceResult>) {
    let reg = TypeRegistry::with_base_types();
    let mut repo = ResourceRepo::new();
    let mut results = Vec::new();
    repo.add(&reg, "/App", "application").unwrap();
    for m in 0..w.machines {
        repo.add(&reg, &format!("/G{m}"), "grid").unwrap();
        repo.add(&reg, &format!("/G{m}/M{m}"), "grid/machine")
            .unwrap();
        repo.add(&reg, &format!("/G{m}/M{m}/batch"), "grid/machine/partition")
            .unwrap();
        for n in 0..w.nodes {
            let node = format!("/G{m}/M{m}/batch/node{n}");
            repo.add(&reg, &node, "grid/machine/partition/node")
                .unwrap();
            repo.set_attr(
                &ResourceName::new(&node).unwrap(),
                "mem",
                AttrValue::Str(format!("{}", (n + 1) * 4)),
            )
            .unwrap();
            for p in 0..w.procs {
                let proc = format!("{node}/p{p}");
                repo.add(&reg, &proc, "grid/machine/partition/node/processor")
                    .unwrap();
                for r in 0..w.results_per_proc {
                    results.push(PerformanceResult::simple(
                        &format!("exec-{m}"),
                        &format!("metric-{r}"),
                        (m * 100 + n * 10 + p) as f64,
                        "u",
                        "T",
                        vec![
                            ResourceName::new("/App").unwrap(),
                            ResourceName::new(&proc).unwrap(),
                        ],
                    ));
                }
            }
        }
    }
    (reg, repo, results)
}

fn build_db(w: &World) -> PTDataStore {
    let store = PTDataStore::in_memory().unwrap();
    let mut ptdf = String::from("Application App\nResource /App application\n");
    for m in 0..w.machines {
        ptdf.push_str(&format!("Execution exec-{m} App\n"));
        ptdf.push_str(&format!("Resource /G{m} grid\n"));
        ptdf.push_str(&format!("Resource /G{m}/M{m} grid/machine\n"));
        ptdf.push_str(&format!(
            "Resource /G{m}/M{m}/batch grid/machine/partition\n"
        ));
        for n in 0..w.nodes {
            let node = format!("/G{m}/M{m}/batch/node{n}");
            ptdf.push_str(&format!("Resource {node} grid/machine/partition/node\n"));
            ptdf.push_str(&format!(
                "ResourceAttribute {node} mem {} string\n",
                (n + 1) * 4
            ));
            for p in 0..w.procs {
                let proc = format!("{node}/p{p}");
                ptdf.push_str(&format!(
                    "Resource {proc} grid/machine/partition/node/processor\n"
                ));
                for r in 0..w.results_per_proc {
                    ptdf.push_str(&format!(
                        "PerfResult exec-{m} \"/App,{proc}(primary)\" T metric-{r} {} u\n",
                        m * 100 + n * 10 + p
                    ));
                }
            }
        }
    }
    store.load_ptdf_str(&ptdf).unwrap();
    store
}

/// Filters to cross-check, parameterized over the world.
fn filters_under_test(reg: &TypeRegistry) -> Vec<ResourceFilter> {
    vec![
        ResourceFilter::by_name("M0"),
        ResourceFilter::by_name("M0").relatives(Relatives::Neither),
        ResourceFilter::by_name("M0").relatives(Relatives::Ancestors),
        ResourceFilter::by_name("M0").relatives(Relatives::Both),
        ResourceFilter::by_name("batch"),
        ResourceFilter::by_name("node0").relatives(Relatives::Both),
        ResourceFilter::by_name("/App").relatives(Relatives::Neither),
        ResourceFilter::by_type(reg.get("grid/machine/partition/node/processor").unwrap()),
        ResourceFilter::by_type(reg.get("grid/machine").unwrap()),
        ResourceFilter::by_attrs(vec![AttrPredicate {
            attr: "mem".into(),
            cmp: AttrCmp::Ge,
            value: "8".into(),
        }])
        .relatives(Relatives::Descendants),
        ResourceFilter::by_name("/nonexistent").relatives(Relatives::Neither),
    ]
}

fn check_equivalence(w: &World) {
    let (reg, repo, model_results) = build_model(w);
    let store = build_db(w);
    let engine = QueryEngine::new(&store);
    let filters = filters_under_test(&reg);

    // 1. Family contents agree (names).
    for f in &filters {
        let model_family: std::collections::BTreeSet<String> = f
            .apply(&repo)
            .members
            .iter()
            .map(|n| n.as_str().to_string())
            .collect();
        let db_family: std::collections::BTreeSet<String> = engine
            .family(f)
            .unwrap()
            .into_iter()
            .map(|id| store.resource_by_id(id).unwrap().unwrap().name)
            .collect();
        assert_eq!(model_family, db_family, "family mismatch for {f:?}");
    }

    // 2. Whole pr-filter matching agrees, for pairs of filters.
    for pair in filters.chunks(2) {
        let prf = PrFilter::from_filters(&repo, pair);
        let model_matched = prf.filter(&model_results).len();
        let families: Vec<_> = pair.iter().map(|f| engine.family(f).unwrap()).collect();
        let db_matched = engine.matching_result_ids(&families).unwrap().len();
        assert_eq!(
            model_matched, db_matched,
            "match count mismatch for {pair:?}"
        );

        // 3. Live counts agree.
        let model_counts = prf.match_counts(&model_results);
        let db_counts = engine.match_counts(&families).unwrap();
        assert_eq!(model_counts.per_family, db_counts.per_family);
        assert_eq!(model_counts.whole, db_counts.whole);
    }
}

#[test]
fn equivalence_on_reference_world() {
    check_equivalence(&World {
        machines: 2,
        nodes: 3,
        procs: 2,
        results_per_proc: 2,
    });
}

#[test]
fn equivalence_on_degenerate_worlds() {
    check_equivalence(&World {
        machines: 1,
        nodes: 1,
        procs: 1,
        results_per_proc: 1,
    });
    check_equivalence(&World {
        machines: 3,
        nodes: 1,
        procs: 4,
        results_per_proc: 1,
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn equivalence_on_random_worlds(
        machines in 1usize..4,
        nodes in 1usize..4,
        procs in 1usize..3,
        results_per_proc in 1usize..3,
    ) {
        check_equivalence(&World { machines, nodes, procs, results_per_proc });
    }
}
