//! End-to-end acceptance test for the network service layer: one server
//! over a fault-injecting VFS serves concurrent clients through load and
//! query traffic, an injected transient read fault is absorbed by the
//! client's retry policy without degrading the store, a forced
//! degraded-mode flip turns writers away with typed `read-only` errors
//! while readers keep succeeding, and after a wire-initiated shutdown
//! the durable image reopens clean under deep fsck with exactly the
//! committed data.
//!
//! Fault placement follows the storage engine's documented matrix
//! (`crates/store/tests/fault_matrix.rs` / `docs/FAULTS.md`):
//!
//! * The *client-retried* fault lands on a **page read** (during deep
//!   fsck with a deliberately small buffer pool). Read failures sit
//!   outside the WAL write path, so the engine surfaces them without
//!   degrading, the server maps `Interrupted` to `transient`, and the
//!   client replays the idempotent request.
//! * The *degraded flip* lands on a **WAL sync** with `StorageFull` — a
//!   non-transient durability failure, which the engine answers by
//!   flipping into read-only degraded mode.

use perftrack::PTDataStore;
use perftrack_server::{
    Client, ClientConfig, ErrorCategory, NameFilter, QuerySpec, Request, Response, Server,
    ServerConfig,
};
use perftrack_store::vfs::{FaultKind, FaultRule, FaultTrigger, FaultVfs, MemVfs, Vfs};
use perftrack_store::DbOptions;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;
/// Large enough that the heap spans far more pages than `pool_frames`,
/// so the deep fsck in phase B must read pages back from the VFS (the
/// armed fault fires on that read). A tiny dataset fits entirely in the
/// pool and the fsck would never touch the disk.
const RESULTS_PER_CLIENT: usize = 250;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-srvconc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small buffer pool so deep fsck is guaranteed to miss the cache (the
/// schema alone spans far more pages than this), plus no retry sleeps.
fn opts() -> DbOptions {
    DbOptions {
        pool_frames: 16,
        retry_backoff: Duration::from_millis(0),
        sleep: |_| {},
        ..DbOptions::default()
    }
}

/// Each client loads its own application/execution/resources so the
/// concurrent loads never conflict logically.
fn client_ptdf(i: usize) -> String {
    let mut s = format!("Application A{i}\nExecution e{i} A{i}\n");
    s.push_str(&format!("Resource /c{i} execution e{i}\n"));
    for r in 0..RESULTS_PER_CLIENT {
        s.push_str(&format!("Resource /c{i}/p{r} execution/process\n"));
        s.push_str(&format!(
            "PerfResult e{i} /c{i}/p{r}(primary) T \"CPU time\" {r}.5 seconds\n"
        ));
    }
    s
}

fn query_rows(client: &mut Client, pattern: &str) -> usize {
    let spec = QuerySpec {
        names: vec![NameFilter {
            pattern: pattern.to_string(),
            relatives: 'D',
        }],
        ..QuerySpec::default()
    };
    match client.call(&Request::Query(spec)).unwrap() {
        Response::Table { rows, .. } => rows.len(),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn faulted_store_serves_concurrent_clients_degrades_and_recovers() {
    let dir = tmpdir("accept");
    let inner: Arc<MemVfs> = Arc::new(MemVfs::new());
    let fault = FaultVfs::new(Arc::clone(&inner) as Arc<dyn Vfs>);
    let store = Arc::new(PTDataStore::open_with_vfs(&dir, opts(), &fault).unwrap());
    let handle = Server::start(Arc::clone(&store), ServerConfig::default()).unwrap();
    let addr = handle.local_addr().to_string();

    // Phase A — four concurrent clients, mixed load + query + stats.
    // Loads serialize on the server's write gate; queries overlap.
    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                match client
                    .call(&Request::LoadPtdf {
                        text: client_ptdf(i),
                        token: String::new(),
                    })
                    .unwrap()
                {
                    Response::Loaded { stats, .. } => {
                        assert_eq!(stats.results as usize, RESULTS_PER_CLIENT, "client {i}");
                    }
                    other => panic!("unexpected response {other:?}"),
                }
                assert_eq!(
                    query_rows(&mut client, &format!("/c{i}")),
                    RESULTS_PER_CLIENT,
                    "client {i} sees its own rows"
                );
                match client.call(&Request::Stats).unwrap() {
                    Response::Stats { json, .. } => assert!(json.contains("\"server\"")),
                    other => panic!("unexpected response {other:?}"),
                }
                assert_eq!(client.retries_performed(), 0, "client {i}: clean phase");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(store.result_count().unwrap(), CLIENTS * RESULTS_PER_CLIENT);
    assert!(!store.is_degraded());
    let m = handle.metrics();
    assert!(m.connections_accepted.get() >= CLIENTS as u64);
    assert!(m.requests.get() >= (CLIENTS * 3) as u64);

    // Phase B — a transient read fault, retried by the client. After a
    // checkpoint every page is clean, so the next VFS operation the
    // store performs is a page read issued by the deep fsck below; arm
    // exactly that operation. The first attempt fails `transient`, the
    // retry succeeds, and the store never degrades.
    store.checkpoint().unwrap();
    let s = fault.op_stats();
    fault.arm(FaultRule {
        trigger: FaultTrigger::OpIndex(s.reads + s.writes + s.syncs + s.truncates),
        kind: FaultKind::Error(ErrorKind::Interrupted),
        once: true,
    });
    let mut retrier = Client::with_config(
        addr.clone(),
        ClientConfig {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    );
    match retrier.call(&Request::Fsck { deep: true }).unwrap() {
        Response::FsckDone { errors, .. } => assert_eq!(errors, 0),
        other => panic!("unexpected response {other:?}"),
    }
    assert!(
        retrier.retries_performed() >= 1,
        "the injected transient fault must be absorbed by a client retry"
    );
    assert!(
        !store.is_degraded(),
        "a read fault must not degrade the store"
    );

    // Phase C — degraded flip: the next WAL sync fails with a
    // non-transient StorageFull, so the in-flight load errors and the
    // engine drops into read-only mode.
    let s = fault.op_stats();
    fault.arm(FaultRule {
        trigger: FaultTrigger::NthSync(s.syncs),
        kind: FaultKind::Error(ErrorKind::StorageFull),
        once: true,
    });
    let mut writer = Client::connect(addr.clone());
    let err = writer
        .call(&Request::LoadPtdf {
            text: client_ptdf(90),
            token: String::new(),
        })
        .unwrap_err();
    assert_eq!(err.remote_category(), Some(ErrorCategory::Internal));
    assert!(store.is_degraded(), "StorageFull on WAL sync must degrade");

    // Writers now get the typed read-only rejection...
    let err = writer
        .call(&Request::LoadPtdf {
            text: client_ptdf(91),
            token: String::new(),
        })
        .unwrap_err();
    assert_eq!(err.remote_category(), Some(ErrorCategory::ReadOnly));
    assert_eq!(writer.retries_performed(), 0, "read-only is not retryable");

    // ...while concurrent readers keep succeeding against the same data.
    let readers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                assert_eq!(
                    query_rows(&mut client, &format!("/c{i}")),
                    RESULTS_PER_CLIENT
                );
                match client.call(&Request::Ping).unwrap() {
                    Response::Pong { degraded, .. } => {
                        assert!(degraded, "ping must advertise degraded mode");
                    }
                    other => panic!("unexpected response {other:?}"),
                }
                match client.call(&Request::Export).unwrap() {
                    Response::Ptdf { text } => assert!(text.contains(&format!("e{i}"))),
                    other => panic!("unexpected response {other:?}"),
                }
            })
        })
        .collect();
    for t in readers {
        t.join().unwrap();
    }

    // Phase D — wire-initiated shutdown drains the server.
    match writer.call(&Request::Shutdown).unwrap() {
        Response::ShuttingDown => {}
        other => panic!("unexpected response {other:?}"),
    }
    handle.join();

    // Phase E — simulated restart from the durable layer: everything the
    // concurrent clients committed survives, the degraded-phase load
    // (whose WAL sync never reached stable storage) does not, and deep
    // fsck is clean.
    drop(store);
    let reopened = PTDataStore::open_with_vfs(&dir, opts(), inner.as_ref()).unwrap();
    assert!(!reopened.is_degraded());
    assert_eq!(
        reopened.result_count().unwrap(),
        CLIENTS * RESULTS_PER_CLIENT,
        "committed data survives; the failed load does not"
    );
    let report = reopened.fsck(true).unwrap();
    assert_eq!(report.error_count(), 0, "{}", report.summary());
    assert_eq!(report.warning_count(), 0, "{}", report.summary());
}
