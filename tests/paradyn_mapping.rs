//! Figures 10–11: Paradyn's resource hierarchy and its mapping into the
//! PerfTrack type system, verified end to end on generated exports.

use perftrack::{PTDataStore, QueryEngine};
use perftrack_adapters::{paradyn, ExecContext, ParadynFiles};
use perftrack_model::prelude::*;
use perftrack_workloads::paradyn::{generate, ParadynConfig};

fn load_one(store: &PTDataStore, exec: &str, seed: u64) {
    let e = generate(&ParadynConfig::small(exec, seed));
    let files = ParadynFiles {
        resources: e.resources.content,
        index: e.index.content,
        histograms: e
            .histograms
            .into_iter()
            .map(|f| (f.name, f.content))
            .collect(),
        shg: Some(e.shg.content),
    };
    let ctx = ExecContext::new(exec, "IRS");
    store
        .load_statements(&paradyn::convert(&ctx, &files).unwrap())
        .unwrap();
}

#[test]
fn fig10_paradyn_hierarchy_recognized() {
    // The generator produces the three Paradyn top-level hierarchies of
    // Figure 10: Code, Machine, SyncObject.
    let e = generate(&ParadynConfig::small("x", 1));
    let roots: std::collections::BTreeSet<&str> = e
        .resources
        .content
        .lines()
        .filter_map(|l| l.trim_start_matches('/').split('/').next())
        .filter(|s| !s.is_empty())
        .collect();
    assert_eq!(
        roots,
        ["Code", "Machine", "SyncObject"].into_iter().collect()
    );
}

#[test]
fn fig11_code_maps_to_build() {
    let store = PTDataStore::in_memory().unwrap();
    load_one(&store, "pd1", 1);
    // Every /Code path landed in the build hierarchy under /IRS-pd.
    let engine = QueryEngine::new(&store);
    let funcs = engine
        .family(&ResourceFilter::by_type(
            TypePath::new("build/module/function").unwrap(),
        ))
        .unwrap();
    assert!(!funcs.is_empty());
    for id in funcs {
        let rec = store.resource_by_id(id).unwrap().unwrap();
        assert!(rec.name.starts_with("/IRS-pd/"), "{}", rec.name);
    }
}

#[test]
fn fig11_machine_maps_to_execution_with_node_attrs() {
    let store = PTDataStore::in_memory().unwrap();
    load_one(&store, "pd1", 2);
    let engine = QueryEngine::new(&store);
    let procs = engine
        .family(&ResourceFilter::by_type(
            TypePath::new("execution/process").unwrap(),
        ))
        .unwrap();
    assert!(!procs.is_empty());
    for id in &procs {
        let rec = store.resource_by_id(*id).unwrap().unwrap();
        assert!(rec.name.starts_with("/pd1-run/"));
        // The Paradyn machine node became an attribute, not an ancestor.
        let attrs = store.attributes_of(*id).unwrap();
        assert!(
            attrs
                .iter()
                .any(|(n, v, _)| n == "node" && v.starts_with("mcr")),
            "process {} lacks node attribute",
            rec.name
        );
    }
    // Threads hang off processes.
    let threads = engine
        .family(&ResourceFilter::by_type(
            TypePath::new("execution/process/thread").unwrap(),
        ))
        .unwrap();
    assert_eq!(
        threads.len(),
        procs.len(),
        "one thread per process in the fixture"
    );
}

#[test]
fn fig11_syncobject_becomes_new_top_level_hierarchy() {
    let store = PTDataStore::in_memory().unwrap();
    let before: Vec<String> = store
        .registry()
        .all()
        .map(|t| t.as_str().to_string())
        .collect();
    assert!(!before.iter().any(|t| t.starts_with("syncObject")));
    load_one(&store, "pd1", 3);
    let reg = store.registry();
    for t in [
        "syncObject",
        "syncObject/class",
        "syncObject/class/instance",
    ] {
        assert!(reg.contains(t), "{t} not registered");
    }
    // Instances exist for the MPI communicators.
    assert!(store
        .resource_id("/pd1-sync/Message/MPI_COMM_WORLD")
        .is_some());
    assert!(store.resource_id("/pd1-sync/Window").is_some());
}

#[test]
fn fig11_time_hierarchy_bins_shared_across_histograms() {
    let store = PTDataStore::in_memory().unwrap();
    load_one(&store, "pd1", 4);
    let engine = QueryEngine::new(&store);
    let bins = engine
        .family(&ResourceFilter::by_type(
            TypePath::new("time/interval").unwrap(),
        ))
        .unwrap();
    // 6 histograms × 20 bins, but bins are global time slices shared
    // across histograms: at most 20 bin resources exist.
    assert!(!bins.is_empty());
    assert!(bins.len() <= 20, "bins shared, got {}", bins.len());
    // Bin attributes form contiguous intervals.
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    for id in bins {
        let attrs = store.attributes_of(id).unwrap();
        let get = |k: &str| -> f64 {
            attrs
                .iter()
                .find(|(n, _, _)| n == k)
                .map(|(_, v, _)| v.parse().unwrap())
                .unwrap()
        };
        intervals.push((get("start time"), get("end time")));
    }
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for w in intervals.windows(2) {
        assert!((w[0].1 - w[1].0).abs() < 1e-6, "bins must tile time: {w:?}");
    }
}

#[test]
fn results_join_code_machine_and_time() {
    // A single Paradyn result's context spans all the mapped hierarchies
    // its focus named, plus the time bin.
    let store = PTDataStore::in_memory().unwrap();
    load_one(&store, "pd1", 5);
    let engine = QueryEngine::new(&store);
    let rows = engine.run(&[]).unwrap();
    assert!(!rows.is_empty());
    let type_by_id = engine.type_path_by_id().unwrap();
    let mut saw_process_focus = false;
    for row in &rows {
        let mut roots = std::collections::BTreeSet::new();
        for &rid in &row.context {
            let rec = store.resource_by_id(rid).unwrap().unwrap();
            let tp = &type_by_id[&rec.type_id];
            roots.insert(tp.split('/').next().unwrap().to_string());
        }
        assert!(roots.contains("time"), "every result sits in a bin");
        assert!(roots.contains("build"), "every focus names code");
        if roots.contains("execution") {
            saw_process_focus = true;
        }
    }
    assert!(saw_process_focus, "some foci are refined by process");
}
